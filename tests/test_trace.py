"""Tests for the TraceObserver timeline instrumentation."""

from __future__ import annotations

from repro.analysis.trace import ProposalRoundRecord, TraceObserver
from repro.core.asm import asm
from repro.core.rand_asm import rand_asm
from repro.workloads.generators import complete_uniform, gnp_incomplete


class TestTraceObserver:
    def test_records_proposal_rounds(self):
        trace = TraceObserver()
        run = asm(complete_uniform(16, seed=0), eps=0.5, observer=trace)
        assert len(trace.proposal_rounds) == run.proposal_rounds_executed
        assert all(
            isinstance(r, ProposalRoundRecord) for r in trace.proposal_rounds
        )

    def test_matching_size_monotone(self):
        """Lemma 1 seen through the trace: |M| never decreases."""
        trace = TraceObserver()
        asm(gnp_incomplete(20, 0.4, seed=1), eps=0.3, observer=trace)
        sizes = [r.matching_size for r in trace.proposal_rounds]
        assert sizes == sorted(sizes)

    def test_good_men_monotone(self):
        """Good men never become bad (Lemma 6's proof observation)."""
        trace = TraceObserver()
        asm(complete_uniform(20, seed=2), eps=0.4, observer=trace)
        goods = [r.good_men for r in trace.proposal_rounds]
        assert goods == sorted(goods)

    def test_quantile_match_boundaries(self):
        trace = TraceObserver()
        run = asm(complete_uniform(12, seed=3), eps=0.5, observer=trace)
        assert (
            len(trace.quantile_match_boundaries)
            == run.quantile_match_calls_executed
        )
        assert trace.quantile_match_boundaries == sorted(
            trace.quantile_match_boundaries
        )

    def test_outer_iteration_stats(self):
        trace = TraceObserver()
        run = asm(complete_uniform(12, seed=3), eps=0.5, observer=trace)
        assert len(trace.outer_iterations) == len(run.outer_iterations)

    def test_records_and_table(self):
        trace = TraceObserver()
        asm(complete_uniform(12, seed=4), eps=0.5, observer=trace)
        records = trace.records()
        assert records and isinstance(records[0], dict)
        text = trace.timeline_table(max_rows=3)
        assert "timeline" in text
        if len(trace.proposal_rounds) > 3:
            assert "more rounds" in text

    def test_convergence_summary(self):
        trace = TraceObserver()
        asm(complete_uniform(16, seed=5), eps=0.3, observer=trace)
        summary = trace.convergence_summary()
        assert summary["final_matching_size"] == 16
        assert 1 <= summary["rounds_to_90pct_matched"] <= summary[
            "proposal_rounds"
        ]
        assert summary["total_proposals"] > 0

    def test_empty_trace_summary(self):
        summary = TraceObserver().convergence_summary()
        assert summary["proposal_rounds"] == 0
        assert summary["rounds_to_90pct_matched"] is None

    def test_observer_does_not_change_behavior(self):
        prefs = gnp_incomplete(16, 0.5, seed=7)
        plain = asm(prefs, 0.3)
        traced = asm(prefs, 0.3, observer=TraceObserver())
        assert plain.matching == traced.matching
        assert plain.rounds_active == traced.rounds_active

    def test_works_with_rand_asm(self):
        trace = TraceObserver()
        rand_asm(complete_uniform(12, seed=6), 0.4, seed=1, observer=trace)
        assert trace.proposal_rounds

    def test_all_unmatched_summary_has_no_90pct_round(self):
        """Regression: a run whose final matching is empty must report
        ``rounds_to_90pct_matched = None``, not round 1 (0.9 * 0 == 0 is
        trivially reached immediately)."""
        from dataclasses import fields

        from repro.analysis.trace import ProposalRoundRecord

        trace = TraceObserver()
        zeros = {f.name: 0 for f in fields(ProposalRoundRecord)}
        for i in range(3):
            trace.telemetry.events.emit(
                "proposal_round", **{**zeros, "index": i}
            )
        summary = trace.convergence_summary()
        assert summary["proposal_rounds"] == 3
        assert summary["final_matching_size"] == 0
        assert summary["rounds_to_90pct_matched"] is None
