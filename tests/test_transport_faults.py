"""Fault injection × transport interaction (ISSUE 10).

The injector and the transport compose in a fixed order (injector-due
redeliveries, then transport-due redeliveries, then fresh sends), so:

* a zero-latency :class:`AsyncEventTransport` must produce a fault
  trace *byte-identical* to the sync lockstep path under the same
  :class:`FaultPlan` — including the committed golden trace;
* under nonzero latency the combined run is still deterministic
  (same plan + seeds → same trace, sharded ≡ async);
* crashes and partitions keep their semantics when deliveries arrive
  out of order: a transport-deferred message to a node that has since
  crashed or gone down is dropped late, never delivered.

Also covers the sequence-keyed fault decisions: the injector keys each
decision by ``(round, sender, recipient, seq)``, where ``seq`` counts
sends over the same link within one round.  ``seq == 0`` derives the
same decision as the legacy three-component key, which is what keeps
the committed golden traces valid.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.cli import main
from repro.congest import (
    AsyncEventTransport,
    ShardedTransport,
    Simulator,
)
from repro.congest.message import Message
from repro.congest.protocols.asm_protocol import run_congest_asm
from repro.faults import FaultInjector, FaultPlan, NodeCrash, PartitionWindow
from repro.graphs import Graph
from repro.workloads import FixedLatency, GeometricLatency, UniformLatency
from repro.workloads.generators import complete_uniform

# Mirrors tests/test_faults.py: the committed golden trace and the CLI
# invocation that regenerates it.
GOLDEN = Path(__file__).parent / "golden" / "fault_trace.json"
GOLDEN_ARGS = [
    "congest",
    "--n", "6",
    "--inner", "4",
    "--outer", "3",
    "--mm-iterations", "12",
    "--drop-rate", "0.2",
    "--fault-seed", "7",
]


def pinger(to, rounds):
    """Sends PING to ``to`` every round; returns nothing."""

    def program():
        for _ in range(rounds):
            yield {to: Message("PING")}

    return program()


def listener(rounds):
    """Records every inbox for ``rounds`` rounds."""

    def program():
        seen = []
        for _ in range(rounds):
            inbox = yield {}
            seen.append(dict(inbox))
        return seen

    return program()


_PLAN_KW = dict(drop_rate=0.2, delay_rate=0.1, duplicate_rate=0.1)
_SCHED = dict(k=4, inner_iterations=6, outer_iterations=4, mm_iterations=12)


def _fault_run(prefs, transport, plan=None):
    plan = plan if plan is not None else FaultPlan(seed=7, **_PLAN_KW)
    return run_congest_asm(
        prefs, 0.5, faults=plan, transport=transport, **_SCHED
    )


def _trace_fingerprint(result):
    return {
        "trace": [dict(r) for r in result.fault_trace],
        "stats": dataclasses.asdict(result.fault_stats),
        "pairs": sorted(
            (repr(a), repr(b)) for a, b in result.matching.pairs()
        ),
    }


# ----------------------------------------------------------------------
# Zero-latency transport: fault traces identical to sync
# ----------------------------------------------------------------------


class TestZeroLatencyFaultIdentity:
    def test_async_zero_fault_trace_identical_to_sync(self):
        prefs = complete_uniform(6, seed=1)
        sync = _fault_run(prefs, None)
        zero = _fault_run(prefs, AsyncEventTransport())
        assert _trace_fingerprint(zero) == _trace_fingerprint(sync)

    def test_sharded_zero_fault_trace_identical_to_sync(self):
        prefs = complete_uniform(6, seed=1)
        sync = _fault_run(prefs, None)
        sharded = ShardedTransport(workers=2)
        try:
            zero = _fault_run(prefs, sharded)
        finally:
            sharded.close()
        assert _trace_fingerprint(zero) == _trace_fingerprint(sync)

    def test_golden_trace_reproduced_through_async_transport(
        self, tmp_path
    ):
        out = tmp_path / "trace.json"
        code = main(
            GOLDEN_ARGS
            + ["--transport", "async", "--fault-trace-out", str(out)]
        )
        assert code == 0
        assert out.read_bytes() == GOLDEN.read_bytes()


# ----------------------------------------------------------------------
# Nonzero latency: deterministic composition, sharded ≡ async
# ----------------------------------------------------------------------


class TestLatencyFaultComposition:
    def test_faults_plus_latency_deterministic(self):
        prefs = complete_uniform(6, seed=2)
        runs = [
            _trace_fingerprint(
                _fault_run(
                    prefs,
                    AsyncEventTransport(
                        GeometricLatency(0.2, 2), link_seed=3
                    ),
                )
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_sharded_with_faults_matches_async(self):
        prefs = complete_uniform(6, seed=2)
        latency = UniformLatency(0, 2)
        base = _trace_fingerprint(
            _fault_run(prefs, AsyncEventTransport(latency, link_seed=9))
        )
        sharded = ShardedTransport(
            latency, link_seed=9, workers=3, min_batch=1
        )
        try:
            got = _trace_fingerprint(_fault_run(prefs, sharded))
        finally:
            sharded.close()
        assert got == base

    def test_fault_decisions_unchanged_by_transport_latency(self):
        # The injector decides fates at *send* time, before routing, so
        # in the rounds preceding any first deferred delivery (here the
        # whole of round 1) the per-link decisions agree with sync.
        prefs = complete_uniform(5, seed=4)
        plan = FaultPlan(seed=11, drop_rate=0.3)
        sync = _fault_run(prefs, None, plan)
        late = _fault_run(
            prefs, AsyncEventTransport(FixedLatency(1)), plan
        )
        first = lambda res: [
            dict(r) for r in res.fault_trace if r["round"] == 1
        ]
        assert first(late) == first(sync)


# ----------------------------------------------------------------------
# Crash / partition semantics under out-of-order delivery
# ----------------------------------------------------------------------


def chain_graph():
    g = Graph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


def scripted_sim(plan, transport, rounds=5):
    g = chain_graph()
    programs = {
        "a": pinger("b", rounds),
        "b": listener(rounds),
        "c": listener(rounds),
    }
    return Simulator(g, programs, faults=plan, transport=transport)


class TestOutOfOrderCrashSemantics:
    def test_deferred_message_to_crashed_node_dropped_late(self):
        # Every send is deferred one round by the transport; b crashes
        # at round 2, so in-flight messages must be dropped, not
        # delivered to a dead node.
        plan = FaultPlan(seed=0, crashes=(NodeCrash("b", 2),))
        transport = AsyncEventTransport(FixedLatency(1))
        sim = scripted_sim(plan, transport)
        stats = sim.run()
        assert stats.outcome == "degraded"
        assert "b" not in sim.results
        assert transport.dropped_late >= 1
        # Nothing the transport held ever reached the crashed node.
        assert transport.deferred == (
            transport.delivered_late
            + transport.dropped_late
            + transport.in_flight()
        )

    def test_deferred_message_respects_restart_window(self):
        # b is down (crash with restart) exactly when the deferred
        # message lands: the transport drops it late.
        plan = FaultPlan(
            seed=0, crashes=(NodeCrash("b", 2, restart_round=4),)
        )
        transport = AsyncEventTransport(FixedLatency(1))
        sim = scripted_sim(plan, transport, rounds=6)
        stats = sim.run()
        assert stats.outcome == "converged"
        assert transport.dropped_late >= 1
        assert transport.delivered_late >= 1

    def test_partition_and_latency_compose(self):
        # The partition drops sends inside its window *before* the
        # transport sees them; deferred pre-window sends still deliver.
        plan = FaultPlan(
            seed=0, partitions=(PartitionWindow(2, 4, group={"a"}),)
        )
        transport = AsyncEventTransport(FixedLatency(1))
        sim = scripted_sim(plan, transport)
        sim.run()
        actions = [r["action"] for r in sim.faults.records]
        assert "drop_partition" in actions
        # Round-1's send crosses the (not yet active) cut and arrives
        # one round late, inside the window: the partition gates sends,
        # not in-flight deliveries.
        assert sim.results["b"][1] == {"a": Message("PING")}
        assert transport.delivered_late >= 1

    def test_injector_delay_preempts_transport_latency(self):
        # Delays never stack: a message the injector defers re-enters
        # delivery directly (it was already delayed once), so with
        # delay_rate=1.0 the transport sees no fresh sends to defer and
        # delivery matches the injector-only schedule exactly.
        plan = FaultPlan(seed=0, delay_rate=1.0, max_delay=1)
        transport = AsyncEventTransport(FixedLatency(1))
        sim = scripted_sim(plan, transport, rounds=6)
        sim.run()
        assert sim.faults.stats.messages_delayed > 0
        assert transport.deferred == 0
        # One one-round delay, not two: round-1's PING lands in round 2.
        assert sim.results["b"][0] == {}
        assert sim.results["b"][1] == {"a": Message("PING")}


# ----------------------------------------------------------------------
# Sequence-keyed fault decisions
# ----------------------------------------------------------------------


class TestSequenceKeying:
    def test_seq_zero_matches_legacy_key(self):
        plan = FaultPlan(seed=5, drop_rate=0.5, delay_rate=0.5)
        for r in range(1, 30):
            assert plan.drops(r, "a", "b") == plan.drops(r, "a", "b", 0)
            assert plan.delay_of(r, "a", "b") == plan.delay_of(
                r, "a", "b", 0
            )
            assert plan.duplicates(r, "a", "b") == plan.duplicates(
                r, "a", "b", 0
            )

    def test_seq_values_decide_independently(self):
        plan = FaultPlan(seed=5, drop_rate=0.5)
        decisions = [
            (plan.drops(r, "a", "b", 0), plan.drops(r, "a", "b", 1))
            for r in range(1, 60)
        ]
        assert any(x != y for x, y in decisions)

    def test_injector_counts_sends_per_link_per_round(self):
        plan = FaultPlan(seed=5, drop_rate=0.5)
        inj = FaultInjector(plan)
        outcomes = [
            inj.filter_send(1, "a", "b", Message("PING"), crashed=())
            for _ in range(8)
        ]
        expected = [
            not plan.drops(1, "a", "b", seq) for seq in range(8)
        ]
        assert outcomes == expected

    def test_seq_counter_resets_each_round(self):
        plan = FaultPlan(seed=5, drop_rate=0.5)
        inj = FaultInjector(plan)
        inj.filter_send(1, "a", "b", Message("PING"), crashed=())
        inj.filter_send(1, "a", "b", Message("PING"), crashed=())
        # New round: the link counter starts over at seq 0.
        got = inj.filter_send(2, "a", "b", Message("PING"), crashed=())
        assert got == (not plan.drops(2, "a", "b", 0))

    def test_seq_recorded_only_when_positive(self):
        plan = FaultPlan(seed=0, drop_rate=1.0)
        inj = FaultInjector(plan)
        inj.filter_send(1, "a", "b", Message("PING"), crashed=())
        inj.filter_send(1, "a", "b", Message("PING"), crashed=())
        drops = [r for r in inj.records if r["action"] == "drop"]
        assert len(drops) == 2
        assert "seq" not in drops[0]  # legacy shape for seq 0
        assert drops[1]["seq"] == 1

    def test_simulator_sends_stay_at_seq_zero(self):
        # One outbox slot per link per round means the simulator never
        # advances seq — which is why the golden traces predate and
        # survive the seq-keyed derivation.
        prefs = complete_uniform(5, seed=3)
        result = _fault_run(prefs, None)
        assert all("seq" not in r for r in result.fault_trace)
