"""Regression tests pinning the PR-7 portability/clock bugfix sweep.

Three bugs, three pins:

1. CLI wall-time measurement used ``time.time()`` — not monotonic, so
   an NTP step mid-run could yield negative or wildly wrong durations.
   Durations now come from ``time.perf_counter()``; the test makes
   ``time.time()`` explode to prove no duration path touches it.
2. ``repro.perf.bench`` imported the Unix-only ``resource`` module at
   module scope (ImportError on Windows) and reported ``ru_maxrss``
   raw, which is KiB on Linux but *bytes* on macOS.
3. ``cli._git_rev`` swallowed *every* exception, hiding programming
   errors behind a silent ``"dev"`` fallback; it now catches only
   ``(OSError, subprocess.SubprocessError)``.
"""

from __future__ import annotations

import subprocess
import time

import pytest

import repro.cli as cli
import repro.perf.bench as bench


class TestMonotonicClock:
    def test_cli_durations_never_read_wall_clock(self, monkeypatch, capsys):
        def boom():
            raise AssertionError(
                "time.time() consulted for a duration measurement"
            )

        monkeypatch.setattr(time, "time", boom)
        code = cli.main(
            ["run", "--workload", "complete", "--n", "10",
             "--eps", "0.5"]
        )
        assert code == 0
        assert "blocking" in capsys.readouterr().out

    def test_no_time_time_left_in_cli_source(self):
        import inspect

        assert "time.time()" not in inspect.getsource(cli)


class TestMaxRssPortability:
    def test_absent_resource_module_reports_none(self, monkeypatch):
        monkeypatch.setattr(bench, "resource", None)
        assert bench._max_rss_kb() is None

    def _fake_resource(self, ru_maxrss):
        class FakeUsage:
            pass

        class FakeResource:
            RUSAGE_SELF = 0

            @staticmethod
            def getrusage(_who):
                usage = FakeUsage()
                usage.ru_maxrss = ru_maxrss
                return usage

        return FakeResource()

    def test_linux_reports_kib_unchanged(self, monkeypatch):
        monkeypatch.setattr(bench, "resource", self._fake_resource(4096))
        monkeypatch.setattr(bench.sys, "platform", "linux")
        assert bench._max_rss_kb() == 4096

    def test_darwin_bytes_normalized_to_kib(self, monkeypatch):
        monkeypatch.setattr(
            bench, "resource", self._fake_resource(4096 * 1024)
        )
        monkeypatch.setattr(bench.sys, "platform", "darwin")
        assert bench._max_rss_kb() == 4096


class TestGitRevErrorNarrowing:
    def test_missing_git_falls_back_to_dev(self, monkeypatch):
        def no_git(*args, **kwargs):
            raise FileNotFoundError("git not on PATH")

        monkeypatch.setattr(subprocess, "run", no_git)
        assert cli._git_rev() == "dev"

    def test_subprocess_failure_falls_back_to_dev(self, monkeypatch):
        def not_a_repo(*args, **kwargs):
            raise subprocess.CalledProcessError(128, "git")

        monkeypatch.setattr(subprocess, "run", not_a_repo)
        assert cli._git_rev() == "dev"

    def test_timeout_falls_back_to_dev(self, monkeypatch):
        def hangs(*args, **kwargs):
            raise subprocess.TimeoutExpired("git", 10)

        monkeypatch.setattr(subprocess, "run", hangs)
        assert cli._git_rev() == "dev"

    def test_programming_errors_propagate(self, monkeypatch):
        def bug(*args, **kwargs):
            raise TypeError("broken call site")

        monkeypatch.setattr(subprocess, "run", bug)
        with pytest.raises(TypeError):
            cli._git_rev()
