"""Benchmark guard: disabled telemetry must stay near-zero-cost.

The engine's phase timers run on every ProposalRound even when no
telemetry bundle was requested (they hit the shared ``NULL_TELEMETRY``
no-op path).  These tests bound that cost two ways:

* a direct micro-benchmark of the null timer, scaled by how many timer
  sites a small run actually executes, must stay under 5% of the run's
  wall time;
* paired best-of-N wall times of the default (null) bundle versus an
  explicitly disabled bundle must agree to within 5% plus a small
  absolute slack, so neither no-op flavor silently grows a cost.

Best-of-N with interleaved measurement keeps the comparison robust to
scheduler noise on shared CI machines.
"""

from __future__ import annotations

from time import perf_counter

from repro.core.asm import asm
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.workloads.generators import complete_uniform

N = 24
EPS = 0.5
REPEATS = 7
ABS_SLACK_SECONDS = 0.002


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def test_null_timer_overhead_under_5pct_of_small_run():
    prefs = complete_uniform(N, seed=0)

    # How many timer observations does this run actually make?
    tel = Telemetry.create()
    asm(prefs, EPS, telemetry=tel)
    timer_calls = sum(
        len(values) for values in tel.metrics.histograms.values()
    )
    assert timer_calls > 0

    # Per-call cost of the no-op path, measured in bulk.
    iterations = 20_000
    t0 = perf_counter()
    for _ in range(iterations):
        with NULL_TELEMETRY.timer("x"):
            pass
    per_call = (perf_counter() - t0) / iterations

    run_seconds = _best_of(lambda: asm(prefs, EPS))
    overhead = timer_calls * per_call
    assert overhead < 0.05 * run_seconds, (
        f"no-op timers cost {overhead:.6f}s across {timer_calls} sites "
        f"vs {run_seconds:.6f}s run time"
    )


def test_default_matches_disabled_bundle_within_5pct():
    prefs = complete_uniform(N, seed=1)
    disabled = Telemetry.disabled()

    # Warm up both paths before timing.
    asm(prefs, EPS)
    asm(prefs, EPS, telemetry=disabled)

    best_default = float("inf")
    best_disabled = float("inf")
    for _ in range(REPEATS):  # interleave to share machine noise
        t0 = perf_counter()
        asm(prefs, EPS)
        best_default = min(best_default, perf_counter() - t0)
        t0 = perf_counter()
        asm(prefs, EPS, telemetry=disabled)
        best_disabled = min(best_disabled, perf_counter() - t0)

    bound = 1.05 * best_disabled + ABS_SLACK_SECONDS
    assert best_default <= bound, (
        f"default (null telemetry) {best_default:.6f}s exceeds "
        f"disabled-bundle bound {bound:.6f}s"
    )
