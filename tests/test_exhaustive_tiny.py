"""Exhaustive verification on tiny instances.

For n = 2 the space of complete preference profiles is tiny
((2!)⁴ = 16); we check every one.  For n = 3 ((3!)⁶ = 46 656) we check
a deterministic sample, and for 2×2 incomplete markets we enumerate
every symmetric acceptability structure with every ranking.  These
exhaustive sweeps catch corner cases random generators rarely hit
(empty lists, ties in quantiles, single-suitor women, etc.).
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.stability import (
    BlockingPairIndex,
    count_blocking_pairs,
    find_blocking_pairs,
    is_stable,
    rank_or_unmatched_man,
    rank_or_unmatched_woman,
)
from repro.baselines.gale_shapley import gale_shapley, parallel_gale_shapley
from repro.core.asm import asm
from repro.core.matching import Matching
from repro.core.preferences import PreferenceProfile


def all_complete_profiles(n: int):
    """Every complete profile on n men / n women."""
    orders = list(itertools.permutations(range(n)))
    for men in itertools.product(orders, repeat=n):
        for women in itertools.product(orders, repeat=n):
            yield PreferenceProfile(men, women)


def sampled_complete_profiles(n: int, stride: int):
    """A deterministic stride-sample of the complete-profile space."""
    for i, prefs in enumerate(all_complete_profiles(n)):
        if i % stride == 0:
            yield prefs


class TestExhaustiveN2:
    def test_gale_shapley_stable_on_all_16(self):
        count = 0
        for prefs in all_complete_profiles(2):
            result = gale_shapley(prefs)
            assert is_stable(prefs, result.matching)
            assert len(result.matching) == 2
            count += 1
        assert count == 16

    def test_parallel_gs_equals_sequential_on_all_16(self):
        for prefs in all_complete_profiles(2):
            assert (
                parallel_gale_shapley(prefs).matching
                == gale_shapley(prefs).matching
            )

    @pytest.mark.parametrize("eps", [0.3, 1.0])
    def test_asm_theorem3_on_all_16(self, eps):
        for prefs in all_complete_profiles(2):
            run = asm(prefs, eps, check_invariants=True)
            run.matching.validate_against(prefs)
            assert count_blocking_pairs(prefs, run.matching) <= (
                eps * prefs.num_edges
            )


class TestSampledN3:
    def test_asm_theorem3_on_sampled_n3(self):
        eps = 0.5
        checked = 0
        for prefs in sampled_complete_profiles(3, stride=997):
            run = asm(prefs, eps, check_invariants=True)
            assert count_blocking_pairs(prefs, run.matching) <= (
                eps * prefs.num_edges
            )
            checked += 1
        assert checked >= 40

    def test_gs_stable_on_sampled_n3(self):
        for prefs in sampled_complete_profiles(3, stride=1499):
            assert is_stable(prefs, gale_shapley(prefs).matching)


def all_incomplete_2x2_profiles():
    """Every symmetric 2x2 market: each of the 4 potential edges is
    present or absent, and each player orders their acceptable set."""
    edges_all = [(0, 0), (0, 1), (1, 0), (1, 1)]
    for mask in range(16):
        edges = [e for i, e in enumerate(edges_all) if mask >> i & 1]
        men_sets = [
            sorted(w for (m, w) in edges if m == mm) for mm in range(2)
        ]
        women_sets = [
            sorted(m for (m, w) in edges if w == ww) for ww in range(2)
        ]
        men_orders = [
            list(itertools.permutations(s)) for s in men_sets
        ]
        women_orders = [
            list(itertools.permutations(s)) for s in women_sets
        ]
        for m0 in men_orders[0]:
            for m1 in men_orders[1]:
                for w0 in women_orders[0]:
                    for w1 in women_orders[1]:
                        yield PreferenceProfile([m0, m1], [w0, w1])


class TestExhaustiveIncomplete2x2:
    def test_space_size_and_distinctness(self):
        profiles = list(all_incomplete_2x2_profiles())
        # Sum over the 16 edge masks of prod(|acceptable set|!) per
        # player = sum of 2^(players with degree 2):
        # 16 (full) + 4*4 (3 edges) + (4*2 + 2*1) (2 edges) + 4 + 1 = 47.
        assert len(profiles) == 47
        assert len(set(profiles)) == 47  # all distinct (hashable)

    def test_gs_stable_on_every_incomplete_2x2(self):
        for prefs in all_incomplete_2x2_profiles():
            result = gale_shapley(prefs)
            result.matching.validate_against(prefs)
            assert is_stable(prefs, result.matching)

    def test_asm_theorem3_on_every_incomplete_2x2(self):
        for prefs in all_incomplete_2x2_profiles():
            run = asm(prefs, 0.5, check_invariants=True)
            run.matching.validate_against(prefs)
            assert count_blocking_pairs(prefs, run.matching) <= (
                0.5 * prefs.num_edges
            )

    def test_asm_exact_when_eps_tiny_on_2x2(self):
        """With eps tiny, k is huge (singleton quantiles): ASM finds an
        exactly stable matching on every 2x2 instance."""
        for prefs in all_incomplete_2x2_profiles():
            run = asm(prefs, 0.01, check_invariants=True)
            assert is_stable(prefs, run.matching)


def all_incomplete_profiles(n_men: int, n_women: int):
    """Every market on ``n_men × n_women``: each potential edge present
    or absent, each player ordering their acceptable set every way.

    Generalizes :func:`all_incomplete_2x2_profiles` to asymmetric
    markets, where ``deg(m)`` and ``deg(w)`` differ across the two
    sides and the ``P_v(∅) = deg(v) + 1`` convention must use each
    player's *own* degree.
    """
    edges_all = [
        (m, w) for m in range(n_men) for w in range(n_women)
    ]
    for mask in range(1 << len(edges_all)):
        edges = [e for i, e in enumerate(edges_all) if mask >> i & 1]
        men_sets = [
            sorted(w for (m, w) in edges if m == mm) for mm in range(n_men)
        ]
        women_sets = [
            sorted(m for (m, w) in edges if w == ww) for ww in range(n_women)
        ]
        for men in itertools.product(
            *(itertools.permutations(s) for s in men_sets)
        ):
            for women in itertools.product(
                *(itertools.permutations(s) for s in women_sets)
            ):
                yield PreferenceProfile(list(men), list(women))


def all_matchings(prefs: PreferenceProfile):
    """Every matching of ``prefs`` (subsets of edges, no shared player)."""
    edges = sorted(prefs.edges())
    for r in range(len(edges) + 1):
        for subset in itertools.combinations(edges, r):
            men = [m for m, _ in subset]
            women = [w for _, w in subset]
            if len(set(men)) == len(men) and len(set(women)) == len(women):
                yield Matching(subset)


class TestExhaustiveAsymmetric2x3:
    """Asymmetric-degree regressions (satellite audit of the rank
    conventions): the 2-men × 3-women space exercises every combination
    of unequal side sizes, empty lists, and isolated players."""

    def test_rank_convention_uses_own_degree(self):
        for prefs in all_incomplete_profiles(2, 3):
            empty = Matching()
            for m in range(prefs.n_men):
                assert rank_or_unmatched_man(prefs, empty, m) == (
                    prefs.deg_man(m) + 1
                )
            for w in range(prefs.n_women):
                assert rank_or_unmatched_woman(prefs, empty, w) == (
                    prefs.deg_woman(w) + 1
                )

    def test_asm_theorem3_and_engine_equivalence_on_2x3(self):
        eps = 0.5
        checked = 0
        for prefs in all_incomplete_profiles(2, 3):
            fast = asm(prefs, eps, check_invariants=True)
            reference = asm(prefs, eps, optimized=False)
            assert fast == reference
            fast.matching.validate_against(prefs)
            assert count_blocking_pairs(prefs, fast.matching) <= (
                eps * prefs.num_edges
            )
            checked += 1
        # sum over the 64 edge masks of prod(deg!) per player
        assert checked == 847  # the sweep really enumerated the space

    def test_index_agrees_with_oracle_on_every_2x3_matching(self):
        for prefs in all_incomplete_profiles(2, 3):
            index = BlockingPairIndex(prefs)
            for matching in all_matchings(prefs):
                index.update_to(matching)
                assert index.pairs() == sorted(
                    find_blocking_pairs(prefs, matching)
                )

    def test_gs_stable_on_every_2x3(self):
        for prefs in all_incomplete_profiles(2, 3):
            result = gale_shapley(prefs)
            result.matching.validate_against(prefs)
            assert is_stable(prefs, result.matching)