"""Exhaustive verification on tiny instances.

For n = 2 the space of complete preference profiles is tiny
((2!)⁴ = 16); we check every one.  For n = 3 ((3!)⁶ = 46 656) we check
a deterministic sample, and for 2×2 incomplete markets we enumerate
every symmetric acceptability structure with every ranking.  These
exhaustive sweeps catch corner cases random generators rarely hit
(empty lists, ties in quantiles, single-suitor women, etc.).
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.stability import count_blocking_pairs, is_stable
from repro.baselines.gale_shapley import gale_shapley, parallel_gale_shapley
from repro.core.asm import asm
from repro.core.preferences import PreferenceProfile


def all_complete_profiles(n: int):
    """Every complete profile on n men / n women."""
    orders = list(itertools.permutations(range(n)))
    for men in itertools.product(orders, repeat=n):
        for women in itertools.product(orders, repeat=n):
            yield PreferenceProfile(men, women)


def sampled_complete_profiles(n: int, stride: int):
    """A deterministic stride-sample of the complete-profile space."""
    for i, prefs in enumerate(all_complete_profiles(n)):
        if i % stride == 0:
            yield prefs


class TestExhaustiveN2:
    def test_gale_shapley_stable_on_all_16(self):
        count = 0
        for prefs in all_complete_profiles(2):
            result = gale_shapley(prefs)
            assert is_stable(prefs, result.matching)
            assert len(result.matching) == 2
            count += 1
        assert count == 16

    def test_parallel_gs_equals_sequential_on_all_16(self):
        for prefs in all_complete_profiles(2):
            assert (
                parallel_gale_shapley(prefs).matching
                == gale_shapley(prefs).matching
            )

    @pytest.mark.parametrize("eps", [0.3, 1.0])
    def test_asm_theorem3_on_all_16(self, eps):
        for prefs in all_complete_profiles(2):
            run = asm(prefs, eps, check_invariants=True)
            run.matching.validate_against(prefs)
            assert count_blocking_pairs(prefs, run.matching) <= (
                eps * prefs.num_edges
            )


class TestSampledN3:
    def test_asm_theorem3_on_sampled_n3(self):
        eps = 0.5
        checked = 0
        for prefs in sampled_complete_profiles(3, stride=997):
            run = asm(prefs, eps, check_invariants=True)
            assert count_blocking_pairs(prefs, run.matching) <= (
                eps * prefs.num_edges
            )
            checked += 1
        assert checked >= 40

    def test_gs_stable_on_sampled_n3(self):
        for prefs in sampled_complete_profiles(3, stride=1499):
            assert is_stable(prefs, gale_shapley(prefs).matching)


def all_incomplete_2x2_profiles():
    """Every symmetric 2x2 market: each of the 4 potential edges is
    present or absent, and each player orders their acceptable set."""
    edges_all = [(0, 0), (0, 1), (1, 0), (1, 1)]
    for mask in range(16):
        edges = [e for i, e in enumerate(edges_all) if mask >> i & 1]
        men_sets = [
            sorted(w for (m, w) in edges if m == mm) for mm in range(2)
        ]
        women_sets = [
            sorted(m for (m, w) in edges if w == ww) for ww in range(2)
        ]
        men_orders = [
            list(itertools.permutations(s)) for s in men_sets
        ]
        women_orders = [
            list(itertools.permutations(s)) for s in women_sets
        ]
        for m0 in men_orders[0]:
            for m1 in men_orders[1]:
                for w0 in women_orders[0]:
                    for w1 in women_orders[1]:
                        yield PreferenceProfile([m0, m1], [w0, w1])


class TestExhaustiveIncomplete2x2:
    def test_space_size_and_distinctness(self):
        profiles = list(all_incomplete_2x2_profiles())
        # Sum over the 16 edge masks of prod(|acceptable set|!) per
        # player = sum of 2^(players with degree 2):
        # 16 (full) + 4*4 (3 edges) + (4*2 + 2*1) (2 edges) + 4 + 1 = 47.
        assert len(profiles) == 47
        assert len(set(profiles)) == 47  # all distinct (hashable)

    def test_gs_stable_on_every_incomplete_2x2(self):
        for prefs in all_incomplete_2x2_profiles():
            result = gale_shapley(prefs)
            result.matching.validate_against(prefs)
            assert is_stable(prefs, result.matching)

    def test_asm_theorem3_on_every_incomplete_2x2(self):
        for prefs in all_incomplete_2x2_profiles():
            run = asm(prefs, 0.5, check_invariants=True)
            run.matching.validate_against(prefs)
            assert count_blocking_pairs(prefs, run.matching) <= (
                0.5 * prefs.num_edges
            )

    def test_asm_exact_when_eps_tiny_on_2x2(self):
        """With eps tiny, k is huge (singleton quantiles): ASM finds an
        exactly stable matching on every 2x2 instance."""
        for prefs in all_incomplete_2x2_profiles():
            run = asm(prefs, 0.01, check_invariants=True)
            assert is_stable(prefs, run.matching)