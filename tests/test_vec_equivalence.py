"""Seeded equivalence: the numpy struct-of-arrays engine is bit-identical.

``ASMEngine(optimized="vec")`` compiles the profile to flat arrays and
replays ProposalRound / QuantileMatch as batched array operations.  The
contract is *bit-identity* with the pure-Python reference engine — the
entire :class:`~repro.core.asm.ASMResult` (matching, good/bad/removed
sets, message stats, round charges by category, per-round and per-outer
stats, synchronous time) must be equal on every instance.  These tests
pin that contract over the workload generator grid, a seeded property
sweep (``REPRO_PROPERTY_TRIALS``, default 200), the Theorem 3 ε-bound
on the vec path, and the vectorized blocking-pair counter against the
Python oracle.

numpy is an optional extra (``repro[fast]``): with numpy absent, the
vec tests skip and the fallback tests assert the clean
:class:`~repro.errors.VecUnavailableError` surface instead.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.analysis.stability import count_blocking_pairs
from repro.core.asm import ASMEngine, asm
from repro.core.matching import Matching
from repro.core.preferences import PreferenceProfile
from repro.core.quantile import quantile_boundaries
from repro.errors import InvalidParameterError, VecUnavailableError
from repro.mm.oracles import israeli_itai_oracle
from repro.vec import HAS_NUMPY
from repro.workloads.generators import (
    GENERATORS,
    adversarial_gale_shapley,
    bounded_degree,
    complete_uniform,
    gnp_incomplete,
)

needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy not installed (repro[fast] extra)"
)

#: Instances for the property sweep; CI smoke jobs reduce this.
TRIALS = int(os.environ.get("REPRO_PROPERTY_TRIALS", "200"))

# Same representative grid the True/False equivalence suite pins.
GRID = [
    ("complete", {"n": 18, "seed": 0}),
    ("complete", {"n": 18, "seed": 1}),
    ("gnp", {"n": 22, "p": 0.35, "seed": 2}),
    ("bounded", {"n": 20, "d": 6, "seed": 3}),
    ("regular", {"n": 16, "d": 5, "seed": 4}),
    ("almost_regular", {"n": 18, "d_min": 3, "d_max": 7, "seed": 5}),
    ("master_list", {"n": 14, "noise": 0.15, "seed": 6}),
    ("euclidean", {"n": 20, "radius": 0.4, "seed": 7}),
    ("zipf", {"n": 14, "exponent": 1.0, "seed": 8}),
    ("clustered", {"n": 16, "seed": 9}),
]

_ROOT = random.Random(0x5EC5)
_FUZZ = [
    (
        _ROOT.choice(["complete", "gnp", "bounded"]),
        _ROOT.randint(3, 12),
        _ROOT.choice([0.25, 0.4, 0.5, 0.8, 1.0]),
        _ROOT.randrange(2**31),
    )
    for _ in range(TRIALS)
]


def _fuzz_profile(family, n, seed):
    if family == "complete":
        return complete_uniform(n, seed=seed)
    if family == "gnp":
        return gnp_incomplete(n, 0.5, seed=seed)
    return bounded_degree(n, min(4, n), seed=seed)


@needs_numpy
class TestVecEquivalence:
    @pytest.mark.parametrize("name,kwargs", GRID)
    @pytest.mark.parametrize("eps", [0.25, 0.5, 1.0])
    def test_identical_results_across_grid(self, name, kwargs, eps):
        prefs = GENERATORS[name](**kwargs)
        reference = asm(prefs, eps, optimized=False)
        vec = asm(prefs, eps, optimized="vec")
        assert vec == reference

    def test_identical_with_invariant_checking(self):
        prefs = complete_uniform(16, seed=11)
        reference = asm(prefs, 0.4, optimized=False, check_invariants=True)
        vec = asm(prefs, 0.4, optimized="vec", check_invariants=True)
        assert vec == reference

    def test_identical_on_adversarial_instance(self):
        prefs = adversarial_gale_shapley(14)
        assert asm(prefs, 0.3, optimized="vec") == asm(
            prefs, 0.3, optimized=False
        )

    def test_identical_on_asymmetric_markets(self):
        profiles = [
            PreferenceProfile([[], [0, 1]], [[1], [1]]),
            PreferenceProfile([[0, 1], [1]], [[0], [0, 1], []]),
            PreferenceProfile([[2, 0]], [[0], [], [0]]),
            PreferenceProfile([], []),
            PreferenceProfile([[], []], [[], []]),
        ]
        for prefs in profiles:
            reference = asm(
                prefs, 0.5, optimized=False, check_invariants=True
            )
            vec = asm(prefs, 0.5, optimized="vec", check_invariants=True)
            assert vec == reference

    @pytest.mark.parametrize("iterations", [1, 4, 12])
    def test_identical_run_flat(self, iterations):
        prefs = gnp_incomplete(24, 0.3, seed=19)
        reference = ASMEngine(prefs, 0.5, optimized=False).run_flat(
            iterations
        )
        vec = ASMEngine(prefs, 0.5, optimized="vec").run_flat(iterations)
        assert vec == reference

    def test_engines_share_one_compiled_profile(self):
        prefs = complete_uniform(10, seed=2)
        a = ASMEngine(prefs, 0.5, optimized="vec")
        b = ASMEngine(prefs, 0.5, optimized="vec")
        assert a._vec.profile is b._vec.profile  # same cached VecProfile


@needs_numpy
class TestVecPropertySweep:
    """Seeded fuzz: bit-identity and Theorem 3 on the vec path."""

    @pytest.mark.parametrize(
        "family,n,eps,seed", _FUZZ, ids=lambda _: None
    )
    def test_vec_matches_reference_and_theorem3(self, family, n, eps, seed):
        from repro.vec.stability import count_blocking_pairs_vec

        prefs = _fuzz_profile(family, n, seed)
        reference = asm(prefs, eps, optimized=False, check_invariants=True)
        vec = asm(prefs, eps, optimized="vec", check_invariants=True)
        assert vec == reference

        blocking = count_blocking_pairs_vec(prefs, vec.matching.pairs())
        assert blocking == count_blocking_pairs(prefs, vec.matching)
        assert blocking <= eps * prefs.num_edges, (
            f"Theorem 3 violated on vec path ({family}, n={n}, "
            f"seed={seed}): {blocking} > {eps * prefs.num_edges}"
        )


@needs_numpy
class TestVecStabilityCounter:
    def test_counts_match_oracle_on_partial_matchings(self):
        from repro.vec.stability import count_blocking_pairs_vec

        rng = random.Random(7)
        for prefs in (
            complete_uniform(15, seed=1),
            gnp_incomplete(25, 0.3, seed=2),
            bounded_degree(30, 5, seed=3),
        ):
            matchings = [Matching([])]
            for _ in range(8):
                used = set()
                pairs = []
                for m in range(prefs.n_men):
                    lst = prefs.man_list(m)
                    if lst and rng.random() < 0.6:
                        w = rng.choice(lst)
                        if w not in used:
                            used.add(w)
                            pairs.append((m, w))
                matchings.append(Matching(pairs))
            for matching in matchings:
                assert count_blocking_pairs_vec(
                    prefs, matching.pairs()
                ) == count_blocking_pairs(prefs, matching)

    def test_reuses_supplied_profile(self):
        from repro.vec.compile import compile_profile
        from repro.vec.stability import count_blocking_pairs_vec

        prefs = complete_uniform(8, seed=5)
        profile = compile_profile(prefs, 16)
        result = asm(prefs, 0.5, optimized="vec")
        assert count_blocking_pairs_vec(
            prefs, result.matching.pairs(), profile=profile
        ) == count_blocking_pairs(prefs, result.matching)


@needs_numpy
class TestCompiledProfile:
    def test_decimal_str_order_keys_match_str_sort(self):
        import numpy as np

        from repro.vec.compile import decimal_str_order_keys

        for n in (0, 1, 2, 9, 10, 11, 99, 100, 101, 1234):
            keys = decimal_str_order_keys(n)
            by_key = sorted(range(n), key=lambda i: int(keys[i]))
            by_str = sorted(range(n), key=str)
            assert by_key == by_str, f"n={n}"
            assert len(np.unique(keys)) == n  # injective

    def test_quantile_tables_match_quantized_lists(self):
        from repro.core.quantile import QuantizedList
        from repro.vec.compile import compile_profile

        prefs = gnp_incomplete(12, 0.6, seed=4)
        k = 7
        p = compile_profile(prefs, k)
        for m in range(prefs.n_men):
            ql = QuantizedList(prefs.man_list(m), k)
            lo, hi = p.m_indptr[m], p.m_indptr[m + 1]
            for pos in range(lo, hi):
                w = int(p.m_woman[pos])
                assert int(p.m_quant[pos]) == ql.quantile_of(w)

    def test_cross_position_maps_are_inverse(self):
        from repro.vec.compile import compile_profile

        prefs = gnp_incomplete(10, 0.5, seed=6)
        p = compile_profile(prefs, 3)
        for e in range(p.num_edges):
            assert int(p.w2m_pos[int(p.m2w_pos[e])]) == e
            wpos = int(p.m2w_pos[e])
            assert int(p.w_man[wpos]) == int(p.m_owner[e])
            assert int(p.w_owner[wpos]) == int(p.m_woman[e])


class TestFrozenCaches:
    """Satellite: the compiled-profile cache must be tamper-proof."""

    def test_edges_cache_object_identity_preserved(self):
        prefs = complete_uniform(8, seed=0)
        first = prefs.edges()
        assert isinstance(first, frozenset)
        assert prefs.edges() is first
        if HAS_NUMPY:
            from repro.vec.compile import compile_profile

            compile_profile(prefs, 4)
            assert prefs.edges() is first  # compilation didn't disturb it

    @needs_numpy
    def test_compiled_arrays_are_frozen(self):
        import numpy as np

        from repro.vec.compile import compile_profile

        prefs = complete_uniform(6, seed=1)
        p = compile_profile(prefs, 4)
        for name in (
            "m_indptr",
            "m_woman",
            "m_owner",
            "m_quant",
            "m_degree",
            "w_indptr",
            "w_man",
            "w_owner",
            "w_quant",
            "w_degree",
            "m2w_pos",
            "w2m_pos",
            "wq_of_edge",
            "w_first_same_q",
            "m_mm_key",
            "w_mm_key",
        ):
            arr = getattr(p, name)
            assert not arr.flags.writeable, name
            with pytest.raises(ValueError):
                arr[...] = 0

    @needs_numpy
    def test_soa_cache_keyed_by_k(self):
        from repro.vec.compile import compile_profile

        prefs = complete_uniform(6, seed=2)
        p4 = compile_profile(prefs, 4)
        p8 = compile_profile(prefs, 8)
        assert p4 is not p8
        assert compile_profile(prefs, 4) is p4
        assert compile_profile(prefs, 8) is p8
        assert set(prefs.soa_cache()) == {4, 8}

    @needs_numpy
    def test_tampered_cache_entry_is_recompiled(self):
        from repro.vec.compile import VecProfile, compile_profile

        prefs = complete_uniform(5, seed=3)
        prefs.soa_cache()[4] = "garbage"  # not a VecProfile
        rebuilt = compile_profile(prefs, 4)
        assert isinstance(rebuilt, VecProfile)


class TestVecParameterValidation:
    def test_unknown_optimized_value_rejected(self):
        prefs = complete_uniform(4, seed=0)
        with pytest.raises(InvalidParameterError):
            ASMEngine(prefs, 0.5, optimized="fast")

    @needs_numpy
    def test_vec_rejects_removal_mode(self):
        prefs = complete_uniform(4, seed=0)
        with pytest.raises(InvalidParameterError):
            ASMEngine(
                prefs, 0.5, optimized="vec", remove_unmatched_violators=True
            )

    @needs_numpy
    def test_vec_rejects_randomized_oracle(self):
        prefs = complete_uniform(4, seed=0)
        with pytest.raises(InvalidParameterError):
            ASMEngine(
                prefs, 0.5, optimized="vec", mm_oracle=israeli_itai_oracle(3)
            )

    def test_unavailable_error_when_numpy_missing(self, monkeypatch):
        import repro.vec as vec_pkg

        monkeypatch.setattr(vec_pkg, "HAS_NUMPY", False)
        with pytest.raises(VecUnavailableError) as exc:
            vec_pkg.require_numpy()
        assert "repro[fast]" in str(exc.value)
        prefs = complete_uniform(4, seed=0)
        with pytest.raises(VecUnavailableError):
            ASMEngine(prefs, 0.5, optimized="vec")

    def test_python_paths_unaffected_by_numpy_absence(self, monkeypatch):
        import repro.vec as vec_pkg

        monkeypatch.setattr(vec_pkg, "HAS_NUMPY", False)
        prefs = complete_uniform(6, seed=1)
        assert asm(prefs, 0.5, optimized=True) == asm(
            prefs, 0.5, optimized=False
        )


class TestQuantileBoundaryCache:
    """Satellite: per-(degree, k) boundaries computed once, reused."""

    def test_boundaries_match_ceiling_arithmetic(self):
        for degree in range(0, 25):
            for k in (1, 2, 3, 7, 16):
                expected = tuple(
                    -(-rank * k // degree) for rank in range(1, degree + 1)
                )
                assert quantile_boundaries(degree, k) == expected

    def test_cached_identity(self):
        a = quantile_boundaries(12, 16)
        b = quantile_boundaries(12, 16)
        assert a is b

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            quantile_boundaries(5, 0)
        with pytest.raises(InvalidParameterError):
            quantile_boundaries(-1, 4)


@needs_numpy
class TestDynamicVecSolver:
    """Satellite: the dynamic engine's full solves can use the vec path."""

    def test_trajectory_identical_across_solvers(self):
        from repro.dynamic.engine import DynamicMatchingEngine
        from repro.workloads.churn import ChurnConfig, churn_stream

        prefs = bounded_degree(60, 5, seed=23)
        deltas = churn_stream(prefs, ChurnConfig(steps=12), 23)
        engines = [
            DynamicMatchingEngine(prefs, 0.5, solver_optimized=solver)
            for solver in (True, "vec")
        ]
        for engine in engines:
            engine.apply_stream(deltas)
        py, vec = engines
        assert py.trajectory == vec.trajectory
        assert py.fallbacks == vec.fallbacks
        assert py.marriages == vec.marriages
        assert sorted(py.current_matching().pairs()) == sorted(
            vec.current_matching().pairs()
        )
