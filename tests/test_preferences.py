"""Unit tests for repro.core.preferences."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preferences import PreferenceProfile
from repro.errors import InvalidPreferencesError
from repro.workloads.generators import complete_uniform, gnp_incomplete


class TestConstruction:
    def test_basic_profile(self):
        prefs = PreferenceProfile([[0, 1], [1, 0]], [[0, 1], [1, 0]])
        assert prefs.n_men == 2
        assert prefs.n_women == 2
        assert prefs.n_players == 4
        assert prefs.num_edges == 4

    def test_empty_profile(self):
        prefs = PreferenceProfile([], [])
        assert prefs.n_men == 0
        assert prefs.num_edges == 0
        assert prefs.edges() == frozenset()

    def test_empty_lists_allowed(self):
        prefs = PreferenceProfile([[], [0]], [[1]])
        assert prefs.deg_man(0) == 0
        assert prefs.deg_man(1) == 1
        assert prefs.num_edges == 1

    def test_unequal_sides(self):
        prefs = PreferenceProfile([[0], [0]], [[0, 1]])
        assert prefs.n_men == 2
        assert prefs.n_women == 1

    def test_duplicate_in_list_rejected(self):
        with pytest.raises(InvalidPreferencesError, match="more than once"):
            PreferenceProfile([[0, 0]], [[0]])

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidPreferencesError, match="out-of-range"):
            PreferenceProfile([[3]], [[0]])

    def test_asymmetric_rejected_man_side(self):
        # Man 0 ranks woman 0 but she does not rank him.
        with pytest.raises(InvalidPreferencesError, match="asymmetric"):
            PreferenceProfile([[0]], [[]])

    def test_asymmetric_rejected_woman_side(self):
        with pytest.raises(InvalidPreferencesError, match="asymmetric"):
            PreferenceProfile([[]], [[0]])


class TestQueries:
    def test_ranks_are_one_based(self):
        prefs = PreferenceProfile([[2, 0, 1]], [[0], [0], [0]])
        assert prefs.rank_of_woman(0, 2) == 1
        assert prefs.rank_of_woman(0, 0) == 2
        assert prefs.rank_of_woman(0, 1) == 3

    def test_rank_unknown_raises_keyerror(self):
        prefs = PreferenceProfile([[0]], [[0], []])
        with pytest.raises(KeyError):
            prefs.rank_of_woman(0, 1)

    def test_acceptability(self):
        prefs = PreferenceProfile([[1]], [[], [0]])
        assert prefs.acceptable_to_man(0, 1)
        assert not prefs.acceptable_to_man(0, 0)
        assert prefs.acceptable_to_woman(1, 0)
        assert not prefs.acceptable_to_woman(0, 0)

    def test_prefers(self):
        prefs = PreferenceProfile([[1, 0]], [[0], [0]])
        assert prefs.man_prefers(0, 1, 0)
        assert not prefs.man_prefers(0, 0, 1)

    def test_edges_match_iter_edges(self, small_incomplete):
        assert small_incomplete.edges() == frozenset(
            small_incomplete.iter_edges()
        )
        assert small_incomplete.num_edges == len(small_incomplete.edges())

    def test_degrees_sum_to_edges_both_sides(self, small_incomplete):
        p = small_incomplete
        assert sum(p.deg_man(m) for m in range(p.n_men)) == p.num_edges
        assert sum(p.deg_woman(w) for w in range(p.n_women)) == p.num_edges


class TestStructure:
    def test_complete_detection(self):
        assert complete_uniform(5, seed=0).is_complete()
        assert not PreferenceProfile([[0], []], [[0], []]).is_complete()

    def test_regularity_alpha_complete_is_one(self):
        assert complete_uniform(6, seed=1).regularity_alpha() == 1.0

    def test_regularity_alpha_ignores_isolated_men(self):
        prefs = PreferenceProfile([[0, 1], []], [[0], [0]])
        assert prefs.regularity_alpha() == 1.0

    def test_regularity_alpha_empty(self):
        assert PreferenceProfile([[]], [[]]).regularity_alpha() == 1.0

    def test_max_degree(self):
        prefs = PreferenceProfile([[0, 1], [0]], [[0, 1], [0]])
        assert prefs.max_degree() == 2


class TestSerialization:
    def test_round_trip_dict(self, small_incomplete):
        assert (
            PreferenceProfile.from_dict(small_incomplete.to_dict())
            == small_incomplete
        )

    def test_round_trip_json(self, small_complete):
        assert (
            PreferenceProfile.from_json(small_complete.to_json())
            == small_complete
        )

    def test_from_men_lists(self):
        prefs = PreferenceProfile.from_men_lists([[1, 0], [1]], n_women=2)
        assert prefs.acceptable_to_woman(1, 0)
        assert prefs.acceptable_to_woman(1, 1)
        assert prefs.rank_of_woman(0, 1) == 1

    def test_from_men_lists_out_of_range(self):
        with pytest.raises(InvalidPreferencesError):
            PreferenceProfile.from_men_lists([[5]], n_women=2)


class TestDunder:
    def test_equality_and_hash(self):
        a = PreferenceProfile([[0]], [[0]])
        b = PreferenceProfile([[0]], [[0]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != PreferenceProfile([[]], [[]])

    def test_eq_other_type(self):
        assert PreferenceProfile([], []) != 42

    def test_repr(self):
        r = repr(PreferenceProfile([[0]], [[0]]))
        assert "n_men=1" in r and "num_edges=1" in r


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 8), p=st.floats(0.0, 1.0), seed=st.integers(0, 100))
def test_generated_profiles_always_symmetric(n, p, seed):
    """Any generated profile satisfies the symmetry invariant (the
    constructor would raise otherwise) and consistent rank tables."""
    prefs = gnp_incomplete(n, p, seed)
    for m, w in prefs.iter_edges():
        assert prefs.acceptable_to_woman(w, m)
        assert 1 <= prefs.rank_of_woman(m, w) <= prefs.deg_man(m)
        assert 1 <= prefs.rank_of_man(w, m) <= prefs.deg_woman(w)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(0, 6), seed=st.integers(0, 50))
def test_json_round_trip_property(n, seed):
    prefs = gnp_incomplete(n, 0.5, seed)
    assert PreferenceProfile.from_json(prefs.to_json()) == prefs
