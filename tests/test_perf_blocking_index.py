"""Tests for the incremental blocking-pair index (``repro.perf``).

The :class:`~repro.perf.blocking_index.BlockingPairIndex` must stay in
*exact* agreement with the full-scan oracle
:func:`~repro.analysis.stability.find_blocking_pairs` under every kind
of update: satisfy steps, unilateral divorces, and whole-matching
diffs.  Asymmetric markets (``n_men ≠ n_women``, empty lists) get
dedicated coverage because the rank conventions use each player's own
degree.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.stability import (
    BlockingPairIndex,
    blocking_pair_trajectory,
    count_blocking_pairs,
    find_blocking_pairs,
)
from repro.core.asm import asm
from repro.core.matching import Matching, MutableMatching
from repro.core.preferences import PreferenceProfile
from repro.errors import InvalidParameterError
from repro.workloads.generators import (
    complete_uniform,
    gnp_incomplete,
)

ASYMMETRIC_PROFILES = [
    # one man with an empty list
    PreferenceProfile([[], [0, 1]], [[1], [1]]),
    # more women than men, one isolated woman
    PreferenceProfile([[0, 1], [1]], [[0], [0, 1], []]),
    # single man, gap in the women's side
    PreferenceProfile([[2, 0]], [[0], [], [0]]),
    # more men than women
    PreferenceProfile([[0], [0], [0]], [[2, 0, 1]]),
    # totally empty market
    PreferenceProfile([], []),
]


def _assert_synced(index: BlockingPairIndex) -> None:
    expected = sorted(
        find_blocking_pairs(index.prefs, index.current_matching())
    )
    assert index.pairs() == expected
    assert len(index) == len(expected)


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_op_sequences(self, seed):
        prefs = gnp_incomplete(10, 0.5, seed=seed)
        index = BlockingPairIndex(prefs)
        rng = random.Random(seed)
        _assert_synced(index)
        for _ in range(60):
            ops = ["satisfy", "unmatch_man", "unmatch_woman"]
            op = rng.choice(ops)
            if op == "satisfy" and len(index):
                index.satisfy(*index.choose(rng))
            elif op == "unmatch_man":
                index.unmatch_man(rng.randrange(prefs.n_men))
            else:
                index.unmatch_woman(rng.randrange(prefs.n_women))
            _assert_synced(index)
        index.verify()  # built-in oracle cross-check

    @pytest.mark.parametrize("prefs", ASYMMETRIC_PROFILES)
    def test_asymmetric_markets(self, prefs):
        index = BlockingPairIndex(prefs)
        rng = random.Random(0)
        _assert_synced(index)
        for _ in range(10):
            if not len(index):
                break
            index.satisfy(*index.choose(rng))
            _assert_synced(index)
        index.verify()

    def test_initial_matching_accepted(self):
        prefs = complete_uniform(8, seed=1)
        matching = asm(prefs, 0.5).matching
        index = BlockingPairIndex(prefs, matching)
        assert index.current_matching() == matching
        _assert_synced(index)

    def test_update_to_arbitrary_matchings(self):
        prefs = gnp_incomplete(9, 0.6, seed=2)
        edges = sorted(prefs.edges())
        rng = random.Random(2)
        index = BlockingPairIndex(prefs)
        for _ in range(20):
            mm = MutableMatching()
            for m, w in rng.sample(edges, k=rng.randrange(len(edges))):
                if mm.partner_of_man(m) is None and (
                    mm.partner_of_woman(w) is None
                ):
                    mm.match(m, w)
            target = mm.freeze()
            index.update_to(target)
            assert index.current_matching() == target
            _assert_synced(index)

    def test_update_to_is_a_noop_on_same_matching(self):
        prefs = complete_uniform(6, seed=3)
        matching = asm(prefs, 1.0).matching
        index = BlockingPairIndex(prefs, matching)
        assert index.update_to(matching) == 0
        _assert_synced(index)


class TestErrorCases:
    def test_satisfy_non_edge_rejected(self):
        prefs = PreferenceProfile([[0], [1]], [[0], [1]])
        index = BlockingPairIndex(prefs)
        with pytest.raises(InvalidParameterError):
            index.satisfy(1, 0)  # (1, 0) is not an edge

    def test_choose_on_empty_index_rejected(self):
        prefs = PreferenceProfile([[0]], [[0]])
        index = BlockingPairIndex(prefs)
        index.satisfy(0, 0)
        assert len(index) == 0
        with pytest.raises(InvalidParameterError):
            index.choose(random.Random(0))

    def test_update_rejects_non_edge_assignment(self):
        prefs = PreferenceProfile([[0], [1]], [[0], [1]])
        index = BlockingPairIndex(prefs)
        with pytest.raises(InvalidParameterError):
            index.update_from_partner_lists([None, 0])

    def test_update_rejects_duplicate_woman(self):
        prefs = PreferenceProfile([[0], [0]], [[0, 1]])
        index = BlockingPairIndex(prefs)
        with pytest.raises(InvalidParameterError):
            index.update_from_partner_lists([0, 0])


class TestTrajectoryHelpers:
    def test_blocking_pair_trajectory_matches_full_scans(self):
        prefs = gnp_incomplete(8, 0.5, seed=4)
        rng = random.Random(4)
        edges = sorted(prefs.edges())
        matchings = []
        mm = MutableMatching()
        for m, w in rng.sample(edges, k=min(6, len(edges))):
            if mm.partner_of_man(m) is None and (
                mm.partner_of_woman(w) is None
            ):
                mm.match(m, w)
            matchings.append(mm.freeze())
        got = blocking_pair_trajectory(prefs, matchings)
        want = [count_blocking_pairs(prefs, M) for M in matchings]
        assert got == want

    def test_trace_observer_counts_match_full_scan(self):
        from repro.core.asm import ASMObserver
        from repro.perf import InstabilityTraceObserver

        prefs = complete_uniform(10, seed=5)

        class FullScan(ASMObserver):
            def __init__(self):
                self.counts = []

            def on_proposal_round_end(self, engine, stats):
                matching = Matching(
                    (m, w)
                    for m, w in enumerate(engine.man_partner)
                    if w is not None
                )
                self.counts.append(count_blocking_pairs(prefs, matching))

        incremental = InstabilityTraceObserver(prefs)
        asm(prefs, 0.5, observer=incremental)
        oracle = FullScan()
        asm(prefs, 0.5, observer=oracle)
        assert incremental.counts == oracle.counts
        assert len(incremental.counts) > 0
