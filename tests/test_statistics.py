"""Tests for repro.analysis.statistics."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import (
    Summary,
    bootstrap_ci,
    geometric_decay_rate,
    linear_fit,
    loglog_slope,
    mean,
    quantile,
    stdev,
    summarize,
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_stdev(self):
        assert stdev([5]) == 0.0
        assert stdev([]) == 0.0
        assert math.isclose(stdev([2, 4, 4, 4, 5, 5, 7, 9]), 2.138, rel_tol=1e-3)

    def test_quantile(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([7], 0.9) == 7
        assert quantile([1, 2, 3, 4], 0.0) == 1
        assert quantile([1, 2, 3, 4], 1.0) == 4
        assert quantile([1, 2, 3], 0.5) == 2

    def test_summarize(self):
        s = summarize([3, 1, 2])
        assert s == Summary(n=3, mean=2.0, stdev=1.0, min=1, median=2, max=3)

    def test_summarize_empty(self):
        assert summarize([]).n == 0


class TestFits:
    def test_linear_fit_exact(self):
        a, b = linear_fit([0, 1, 2], [1, 3, 5])
        assert math.isclose(a, 2.0)
        assert math.isclose(b, 1.0)

    def test_linear_fit_degenerate(self):
        a, b = linear_fit([1], [5])
        assert a == 0.0 and b == 5.0
        a, b = linear_fit([2, 2, 2], [1, 2, 3])
        assert a == 0.0

    def test_loglog_slope_linear(self):
        ns = [10, 100, 1000]
        assert math.isclose(loglog_slope(ns, ns), 1.0, abs_tol=1e-9)

    def test_loglog_slope_quadratic(self):
        ns = [10, 100, 1000]
        assert math.isclose(
            loglog_slope(ns, [n * n for n in ns]), 2.0, abs_tol=1e-9
        )

    def test_loglog_slope_polylog_shrinks(self):
        """A polylog curve's fitted degree falls toward 0 as n grows
        (5/ln(n) analytically), unlike any true polynomial."""
        small_ns = [2 ** i for i in range(4, 12)]
        large_ns = [2 ** i for i in range(20, 28)]
        poly5 = lambda ns: [math.log2(n) ** 5 for n in ns]  # noqa: E731
        assert loglog_slope(large_ns, poly5(large_ns)) < 0.45
        assert loglog_slope(large_ns, poly5(large_ns)) < loglog_slope(
            small_ns, poly5(small_ns)
        )

    def test_loglog_slope_skips_nonpositive(self):
        assert loglog_slope([1, 10], [0, 5]) == 0.0


class TestDecay:
    def test_clean_geometric(self):
        # 100 -> 50 -> 25: rate 0.5
        assert math.isclose(geometric_decay_rate([100, 50, 25]), 0.5)

    def test_reaching_zero_counts_as_one(self):
        # 100 -> 0 in one step: (1/100)^(1/1)
        assert math.isclose(geometric_decay_rate([100, 0]), 0.01)

    def test_stops_at_first_zero(self):
        assert math.isclose(
            geometric_decay_rate([64, 8, 0, 0, 0]),
            (1 / 64) ** (1 / 2),
        )

    def test_degenerate(self):
        assert geometric_decay_rate([]) == 1.0
        assert geometric_decay_rate([5]) == 1.0
        assert geometric_decay_rate([0, 0]) == 1.0


class TestBootstrap:
    def test_interval_contains_sample_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        lo, hi = bootstrap_ci(values, seed=1)
        assert lo <= mean(values) <= hi

    def test_deterministic(self):
        values = [0.1, 0.5, 0.9, 0.3]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)

    def test_degenerate_inputs(self):
        assert bootstrap_ci([]) == (0.0, 0.0)
        assert bootstrap_ci([3.0]) == (3.0, 3.0)

    def test_tighter_with_more_data(self):
        import random

        rng = random.Random(0)
        small = [rng.gauss(0, 1) for _ in range(5)]
        big = [rng.gauss(0, 1) for _ in range(200)]
        lo_s, hi_s = bootstrap_ci(small, seed=2)
        lo_b, hi_b = bootstrap_ci(big, seed=2)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_invalid_confidence(self):
        import pytest

        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30))
def test_mean_within_bounds(xs):
    assert min(xs) - 1e-6 <= mean(xs) <= max(xs) + 1e-6


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-100, 100), min_size=2, max_size=20))
def test_bootstrap_within_sample_range(xs):
    lo, hi = bootstrap_ci(xs, iterations=200, seed=0)
    assert min(xs) - 1e-9 <= lo <= hi <= max(xs) + 1e-9
