"""Tests for the fault-injection layer (repro.faults).

Covers the plan's stateless decision functions, the injector's delivery
mechanics on scripted simulations, graceful degradation of the real
protocols, the determinism contract (identical traces across runs and
worker counts, zero-rate plans bit-identical to plan-free runs), the
``max_rounds`` timeout outcome, trace serialization, and the CLI flags.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.congest.message import Message
from repro.congest.protocols.asm_protocol import (
    run_congest_asm,
    schedule_round_bound,
)
from repro.congest.protocols.gs_protocol import run_congest_gale_shapley
from repro.congest.protocols.mm_protocols import run_congest_deterministic_mm
from repro.congest.simulator import Simulator
from repro.errors import InvalidParameterError, SimulationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    NodeCrash,
    PartitionWindow,
    sample_nodes,
)
from repro.faults.harness import (
    FAULT_TRIAL_RUNNER,
    fault_plan_for_profile,
    run_fault_trial,
)
from repro.graphs import Graph, man_node, woman_node
from repro.io import load_fault_trace, save_fault_trace
from repro.obs.telemetry import Telemetry
from repro.parallel import TrialPool, TrialSpec
from repro.workloads.generators import complete_uniform

GOLDEN = Path(__file__).parent / "golden" / "fault_trace.json"


# ----------------------------------------------------------------------
# Plan: validation and stateless decisions
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(InvalidParameterError):
            FaultPlan(delay_rate=-0.1)
        with pytest.raises(InvalidParameterError):
            FaultPlan(max_delay=0)

    def test_crash_validation(self):
        with pytest.raises(InvalidParameterError):
            NodeCrash("a", 0)
        with pytest.raises(InvalidParameterError):
            NodeCrash("a", 5, restart_round=5)

    def test_partition_validation(self):
        with pytest.raises(InvalidParameterError):
            PartitionWindow(3, 3)
        with pytest.raises(InvalidParameterError):
            PartitionWindow(0, 2)

    def test_decisions_are_pure_functions(self):
        plan = FaultPlan(seed=11, drop_rate=0.5, delay_rate=0.5)
        twin = FaultPlan(seed=11, drop_rate=0.5, delay_rate=0.5)
        for r in range(1, 30):
            assert plan.drops(r, "a", "b") == twin.drops(r, "a", "b")
            assert plan.delay_of(r, "a", "b") == twin.delay_of(r, "a", "b")

    def test_decisions_depend_on_seed(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = FaultPlan(seed=2, drop_rate=0.5)
        fates_a = [a.drops(r, "a", "b") for r in range(1, 200)]
        fates_b = [b.drops(r, "a", "b") for r in range(1, 200)]
        assert fates_a != fates_b

    def test_drop_rate_empirically_close(self):
        plan = FaultPlan(seed=0, drop_rate=0.3)
        fates = [plan.drops(r, "a", "b") for r in range(1, 2001)]
        assert 0.25 < sum(fates) / len(fates) < 0.35

    def test_delay_bounded_by_max_delay(self):
        plan = FaultPlan(seed=0, delay_rate=1.0, max_delay=3)
        delays = {plan.delay_of(r, "a", "b") for r in range(1, 200)}
        assert delays <= {1, 2, 3}
        assert max(delays) == 3

    def test_zero_rates_never_fire(self):
        plan = FaultPlan(seed=0)
        assert plan.is_null
        for r in range(1, 50):
            assert not plan.drops(r, "a", "b")
            assert not plan.duplicates(r, "a", "b")
            assert plan.delay_of(r, "a", "b") == 0

    def test_partition_window_severs_cut_only(self):
        window = PartitionWindow(2, 4, group={"a"})
        assert window.severs(2, "a", "b")
        assert window.severs(3, "b", "a")
        assert not window.severs(1, "a", "b")  # before the window
        assert not window.severs(4, "a", "b")  # end is exclusive
        assert not window.severs(2, "b", "c")  # same side

    def test_sample_nodes_deterministic_and_order_free(self):
        nodes = [man_node(i) for i in range(8)]
        picked = sample_nodes(nodes, 3, seed=5)
        assert picked == sample_nodes(list(reversed(nodes)), 3, seed=5)
        assert len(picked) == 3
        assert set(picked) <= set(nodes)
        assert sample_nodes(nodes, 0, seed=5) == []


# ----------------------------------------------------------------------
# Injector mechanics on scripted simulations
# ----------------------------------------------------------------------


def chain_graph():
    g = Graph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


def pinger(to, rounds):
    """Sends PING to ``to`` every round; returns nothing."""

    def program():
        for _ in range(rounds):
            yield {to: Message("PING")}

    return program()


def listener(rounds):
    """Records every inbox for ``rounds`` rounds."""

    def program():
        seen = []
        for _ in range(rounds):
            inbox = yield {}
            seen.append(dict(inbox))
        return seen

    return program()


def scripted_sim(plan, rounds=4):
    g = chain_graph()
    programs = {
        "a": pinger("b", rounds),
        "b": listener(rounds),
        "c": listener(rounds),
    }
    return Simulator(g, programs, faults=plan)


class TestInjectorMechanics:
    def test_drop_all(self):
        sim = scripted_sim(FaultPlan(seed=0, drop_rate=1.0), rounds=3)
        sim.run()
        assert sim.results["b"] == [{}, {}, {}]
        assert sim.faults.stats.messages_dropped == 3
        assert [r["action"] for r in sim.faults.records] == ["drop"] * 3
        # Send-time accounting: dropped messages still count.
        assert sim.stats.messages == 3

    def test_duplicate_delivers_again_next_round(self):
        sim = scripted_sim(FaultPlan(seed=0, duplicate_rate=1.0), rounds=3)
        sim.run()
        # Round 1: original. Rounds 2..3: original + previous duplicate
        # (same sender => last-write-wins keeps one copy in the inbox).
        assert sim.results["b"][0] == {"a": Message("PING")}
        assert sim.results["b"][1] == {"a": Message("PING")}
        assert sim.faults.stats.messages_duplicated == 3

    def test_delay_shifts_delivery(self):
        sim = scripted_sim(
            FaultPlan(seed=0, delay_rate=1.0, max_delay=1), rounds=3
        )
        sim.run()
        # Every message arrives exactly one round late; nothing lands in
        # round 1, round 2 carries round 1's message, and so on.
        assert sim.results["b"][0] == {}
        assert sim.results["b"][1] == {"a": Message("PING")}
        assert sim.results["b"][2] == {"a": Message("PING")}
        assert sim.faults.stats.messages_delayed == 3

    def test_partition_window(self):
        plan = FaultPlan(
            seed=0, partitions=(PartitionWindow(1, 3, group={"a"}),)
        )
        sim = scripted_sim(plan, rounds=4)
        sim.run()
        assert sim.results["b"][0] == {}
        assert sim.results["b"][1] == {}
        assert sim.results["b"][2] == {"a": Message("PING")}
        actions = [r["action"] for r in sim.faults.records]
        assert actions == ["drop_partition", "drop_partition"]

    def test_permanent_crash(self):
        plan = FaultPlan(seed=0, crashes=(NodeCrash("b", 2),))
        sim = scripted_sim(plan, rounds=4)
        stats = sim.run()
        assert stats.outcome == "degraded"
        assert stats.crashed_nodes == 1
        assert "b" not in sim.results  # never returned
        assert "b" in sim.crashed
        # a's later sends are dropped against the dead node.
        assert sim.faults.stats.messages_dropped == 3
        actions = [r["action"] for r in sim.faults.records]
        assert actions[0] == "crash"
        assert set(actions[1:]) == {"drop_crashed"}

    def test_crash_restart_window(self):
        plan = FaultPlan(seed=0, crashes=(NodeCrash("b", 2, restart_round=4),))
        sim = scripted_sim(plan, rounds=5)
        stats = sim.run()
        # Down nodes still advance (no skipped rounds) and finish.
        assert stats.outcome == "converged"
        assert sim.results["b"][0] == {"a": Message("PING")}
        assert sim.results["b"][1] == {}  # omitted while down
        assert sim.results["b"][2] == {}
        assert sim.results["b"][3] == {"a": Message("PING")}
        assert sim.faults.stats.nodes_restarted == 1
        actions = [r["action"] for r in sim.faults.records]
        assert actions[0] == "down"
        assert "restart" in actions
        assert actions.count("omit_recv") == 2

    def test_delayed_message_to_crashed_node_dropped_late(self):
        plan = FaultPlan(
            seed=0,
            delay_rate=1.0,
            max_delay=2,
            crashes=(NodeCrash("b", 2),),
        )
        sim = scripted_sim(plan, rounds=4)
        sim.run()
        assert any(
            r["action"] == "drop_late" for r in sim.faults.records
        )

    def test_trace_identical_across_runs(self):
        plan = FaultPlan(seed=9, drop_rate=0.4, delay_rate=0.3)
        a = scripted_sim(plan, rounds=6)
        b = scripted_sim(plan, rounds=6)
        a.run()
        b.run()
        assert a.faults.records == b.faults.records
        assert a.results == b.results


# ----------------------------------------------------------------------
# Simulator timeout outcome (regression: previously indistinguishable
# from convergence)
# ----------------------------------------------------------------------


class TestTimeoutOutcome:
    def test_timeout_raises_and_records_outcome(self):
        # No plan at all: the timeout outcome is independent of faults.
        sim = scripted_sim(None, rounds=50)
        with pytest.raises(SimulationError, match="still running"):
            sim.run(max_rounds=5)
        assert sim.stats.outcome == "timeout"
        assert sim.stats.unfinished_nodes == 3
        assert sim.stats.rounds == 5

    def test_timeout_stop_returns_stats(self):
        sim = scripted_sim(FaultPlan(), rounds=50)
        stats = sim.run(max_rounds=5, on_timeout="stop")
        assert stats.outcome == "timeout"
        assert stats.unfinished_nodes == 3

    def test_invalid_on_timeout(self):
        sim = scripted_sim(FaultPlan(), rounds=2)
        with pytest.raises(InvalidParameterError, match="on_timeout"):
            sim.run(max_rounds=5, on_timeout="ignore")

    def test_clean_finish_converged(self):
        sim = scripted_sim(FaultPlan(), rounds=3)
        stats = sim.run(max_rounds=100)
        assert stats.outcome == "converged"
        assert stats.unfinished_nodes == 0


# ----------------------------------------------------------------------
# Zero-rate identity: an idle injector is provably inert
# ----------------------------------------------------------------------


def _stats_dict(stats):
    return dataclasses.asdict(stats)


class TestZeroRateIdentity:
    def test_asm_bit_identical(self):
        prefs = complete_uniform(6, seed=1)
        kwargs = dict(
            k=4, inner_iterations=4, outer_iterations=3, mm_iterations=12
        )
        plain = run_congest_asm(prefs, 0.5, **kwargs)
        nulled = run_congest_asm(
            prefs, 0.5, faults=FaultPlan(seed=123), **kwargs
        )
        assert nulled.matching == plain.matching
        assert _stats_dict(nulled.stats) == _stats_dict(plain.stats)
        assert nulled.fault_trace == ()
        assert nulled.fault_stats.faults_injected == 0
        assert nulled.unresolved_men == ()
        assert nulled.unresolved_women == ()
        assert nulled.retries == 0

    def test_telemetry_counters_identical(self):
        prefs = complete_uniform(5, seed=2)
        kwargs = dict(
            k=4, inner_iterations=4, outer_iterations=3, mm_iterations=10
        )
        tel_a, tel_b = Telemetry.create(), Telemetry.create()
        run_congest_asm(prefs, 0.5, telemetry=tel_a, **kwargs)
        run_congest_asm(
            prefs, 0.5, telemetry=tel_b, faults=FaultPlan(), **kwargs
        )
        counters_a = tel_a.metrics.to_dict()["counters"]
        counters_b = tel_b.metrics.to_dict()["counters"]
        assert counters_a == counters_b
        assert "congest.faults_injected" not in counters_b
        assert "congest.retries" not in counters_b

    def test_gs_identical(self):
        prefs = complete_uniform(6, seed=3)
        plain, _ = run_congest_gale_shapley(prefs)
        nulled, sim = run_congest_gale_shapley(prefs, faults=FaultPlan())
        assert nulled == plain
        assert sim.faults.records == []


# ----------------------------------------------------------------------
# Protocol degradation under real faults
# ----------------------------------------------------------------------


class TestProtocolDegradation:
    def test_asm_crash_mid_run_surfaces_unresolved(self):
        prefs = complete_uniform(6, seed=1)
        plan = FaultPlan(seed=0, crashes=(NodeCrash(man_node(2), 5),))
        result = run_congest_asm(
            prefs,
            0.5,
            faults=plan,
            k=4,
            inner_iterations=4,
            outer_iterations=3,
            mm_iterations=12,
        )
        assert result.stats.outcome == "degraded"
        assert 2 in result.unresolved_men
        assert result.crashed_nodes == (repr(man_node(2)),)
        # The crashed man contributes no pair; everyone matched is
        # mutually confirmed.
        assert result.matching.partner_of_man(2) is None
        matched_men = {m for m, _ in result.matching.pairs()}
        assert not (matched_men & set(result.unresolved_men))

    def test_asm_drop_run_well_formed(self):
        prefs = complete_uniform(6, seed=1)
        plan = FaultPlan(seed=7, drop_rate=0.2)
        result = run_congest_asm(
            prefs,
            0.5,
            faults=plan,
            k=4,
            inner_iterations=4,
            outer_iterations=3,
            mm_iterations=12,
        )
        assert result.stats.outcome in ("converged", "degraded", "timeout")
        assert result.fault_stats.messages_dropped > 0
        matched_men = {m for m, _ in result.matching.pairs()}
        assert matched_men | set(result.unresolved_men) <= set(range(6))

    def test_asm_respects_round_bound_under_faults(self):
        prefs = complete_uniform(5, seed=4)
        plan = FaultPlan(seed=1, drop_rate=0.5)
        result = run_congest_asm(
            prefs,
            0.5,
            faults=plan,
            k=4,
            inner_iterations=3,
            outer_iterations=2,
            mm_iterations=10,
        )
        assert result.stats.rounds <= schedule_round_bound(result.schedule)

    def test_woman_crash_surfaces(self):
        prefs = complete_uniform(5, seed=2)
        plan = FaultPlan(seed=0, crashes=(NodeCrash(woman_node(1), 4),))
        result = run_congest_asm(
            prefs,
            0.5,
            faults=plan,
            k=4,
            inner_iterations=3,
            outer_iterations=2,
            mm_iterations=10,
        )
        assert result.stats.outcome == "degraded"
        assert 1 in result.unresolved_women
        assert result.matching.partner_of_woman(1) is None

    def test_gs_under_drops_yields_mutual_matching(self):
        prefs = complete_uniform(8, seed=5)
        plan = FaultPlan(seed=3, drop_rate=0.1)
        matching, sim = run_congest_gale_shapley(prefs, faults=plan)
        seen_men, seen_women = set(), set()
        for m, w in matching.pairs():
            assert m not in seen_men and w not in seen_women
            seen_men.add(m)
            seen_women.add(w)

    def test_mm_under_drops_stays_mutual(self):
        g = Graph()
        for i in range(6):
            g.add_edge(("u", i), ("v", i))
            g.add_edge(("u", i), ("v", (i + 1) % 6))
        plan = FaultPlan(seed=2, drop_rate=0.3)
        result = run_congest_deterministic_mm(g, faults=plan)
        for v, p in result.partner.items():
            assert result.partner[p] == v


# ----------------------------------------------------------------------
# Determinism across runs, worker counts, and serialization
# ----------------------------------------------------------------------

_TRIAL_PARAMS = dict(drop_rate=0.25, delay_rate=0.1, fault_seed=13)


def _fault_specs():
    return [
        TrialSpec.make(
            FAULT_TRIAL_RUNNER,
            algorithm="congest-asm",
            n=n,
            eps=0.5,
            seed=seed,
            **_TRIAL_PARAMS,
        )
        for n in (5, 6)
        for seed in (0, 1)
    ]


class TestDeterminism:
    def test_trial_runner_reproducible(self):
        spec = _fault_specs()[0]
        assert run_fault_trial(spec) == run_fault_trial(spec)

    def test_trace_identical_across_worker_counts(self):
        serial = TrialPool(workers=1).run(_fault_specs())
        sharded = TrialPool(workers=2).run(_fault_specs())
        assert serial == sharded
        assert any(r["trace"] for r in serial)

    def test_plan_for_profile_deterministic(self):
        prefs = complete_uniform(6, seed=0)
        a = fault_plan_for_profile(prefs, fault_seed=4, crash_nodes=2)
        b = fault_plan_for_profile(prefs, fault_seed=4, crash_nodes=2)
        assert a == b
        assert len(a.crashes) == 2
        c = fault_plan_for_profile(prefs, fault_seed=5, crash_nodes=2)
        assert {x.node for x in a.crashes} != {x.node for x in c.crashes} or (
            a.crashes == c.crashes
        )

    def test_restart_after_maps_to_restart_round(self):
        prefs = complete_uniform(4, seed=0)
        plan = fault_plan_for_profile(
            prefs, crash_nodes=1, crash_round=3, restart_after=4
        )
        assert plan.crashes[0].restart_round == 7


class TestTraceSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        prefs = complete_uniform(5, seed=1)
        plan = FaultPlan(seed=2, drop_rate=0.3)
        result = run_congest_asm(
            prefs,
            0.5,
            faults=plan,
            k=4,
            inner_iterations=3,
            outer_iterations=2,
            mm_iterations=10,
        )
        path = tmp_path / "trace.json"
        save_fault_trace(result.fault_trace, path, metadata={"seed": 1})
        metadata, records = load_fault_trace(path)
        assert metadata == {"seed": 1}
        assert records == [dict(r) for r in result.fault_trace]

    def test_same_plan_same_bytes(self, tmp_path):
        prefs = complete_uniform(5, seed=1)
        plan = FaultPlan(seed=2, drop_rate=0.3)
        kwargs = dict(
            k=4, inner_iterations=3, outer_iterations=2, mm_iterations=10
        )
        paths = []
        for name in ("a.json", "b.json"):
            result = run_congest_asm(prefs, 0.5, faults=plan, **kwargs)
            path = tmp_path / name
            save_fault_trace(result.fault_trace, path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


# The exact CLI invocation the CI fault-smoke job replays; the golden
# file pins the trace bytes (regenerate by running the command below
# with --fault-trace-out tests/golden/fault_trace.json).
GOLDEN_ARGS = [
    "congest",
    "--n", "6",
    "--inner", "4",
    "--outer", "3",
    "--mm-iterations", "12",
    "--drop-rate", "0.2",
    "--fault-seed", "7",
]


class TestGoldenTrace:
    def test_cli_reproduces_committed_trace(self, tmp_path):
        out = tmp_path / "trace.json"
        code = main(GOLDEN_ARGS + ["--fault-trace-out", str(out)])
        assert code == 0
        assert out.read_bytes() == GOLDEN.read_bytes()

    def test_golden_is_well_formed(self):
        metadata, records = load_fault_trace(GOLDEN)
        assert metadata["fault_seed"] == 7
        assert records, "golden trace should contain fault records"
        assert all(r["action"] == "drop" for r in records)


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------


class TestCLI:
    def test_fault_flags_print_degradation_columns(self, capsys):
        code = main(
            [
                "congest",
                "--n", "5",
                "--inner", "3",
                "--outer", "2",
                "--mm-iterations", "10",
                "--crash", "1",
                "--crash-round", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "outcome" in out
        assert "degraded" in out
        assert "unresolved" in out

    def test_no_fault_flags_no_fault_columns(self, capsys):
        code = main(
            [
                "congest",
                "--n", "5",
                "--inner", "3",
                "--outer", "2",
                "--mm-iterations", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "outcome" not in out

    def test_invalid_rate_rejected(self):
        with pytest.raises(SystemExit):
            main(["congest", "--drop-rate", "1.5"])

    def test_gale_shapley_with_faults(self, capsys):
        code = main(
            [
                "congest",
                "--protocol", "gale-shapley",
                "--n", "6",
                "--drop-rate", "0.1",
                "--fault-seed", "3",
            ]
        )
        assert code == 0
        assert "outcome" in capsys.readouterr().out

    def test_trace_out_activates_injector_at_zero_rates(self, tmp_path):
        out = tmp_path / "trace.json"
        code = main(
            [
                "congest",
                "--n", "5",
                "--inner", "3",
                "--outer", "2",
                "--mm-iterations", "10",
                "--fault-trace-out", str(out),
            ]
        )
        assert code == 0
        _, records = load_fault_trace(out)
        assert records == []  # zero rates: injector active but silent


# ----------------------------------------------------------------------
# Telemetry surface
# ----------------------------------------------------------------------


class TestTelemetry:
    def test_fault_counters_and_events(self):
        prefs = complete_uniform(6, seed=1)
        tel = Telemetry.create()
        plan = FaultPlan(seed=7, drop_rate=0.2)
        result = run_congest_asm(
            prefs,
            0.5,
            faults=plan,
            telemetry=tel,
            k=4,
            inner_iterations=4,
            outer_iterations=3,
            mm_iterations=12,
        )
        counters = tel.metrics.to_dict()["counters"]
        assert counters["congest.faults_injected"] == (
            result.fault_stats.faults_injected
        )
        assert counters["congest.messages_dropped"] == (
            result.fault_stats.messages_dropped
        )
        fault_events = tel.events.by_kind("fault")
        assert len(fault_events) == result.fault_stats.faults_injected
        assert fault_events[0].fields["action"] in (
            "drop", "delay", "duplicate"
        )

    def test_retries_counter_only_when_retries_fired(self):
        prefs = complete_uniform(6, seed=1)
        tel = Telemetry.create()
        result = run_congest_asm(
            prefs,
            0.5,
            faults=FaultPlan(seed=7, drop_rate=0.2),
            telemetry=tel,
            k=4,
            inner_iterations=4,
            outer_iterations=3,
            mm_iterations=12,
        )
        counters = tel.metrics.to_dict()["counters"]
        if result.retries > 0:
            assert counters["congest.retries"] == result.retries
        else:
            assert "congest.retries" not in counters
