"""Tests for AlmostRegularASM (Theorem 6)."""

from __future__ import annotations

import pytest

from repro.analysis.stability import instability
from repro.core.almost_regular import (
    almost_regular_asm,
    plan_almost_regular,
)
from repro.core.asm import ASMEngine
from repro.errors import InvalidParameterError
from repro.mm.oracles import amm_oracle
from repro.workloads.generators import (
    almost_regular,
    complete_uniform,
    regular_bipartite,
)


class TestPlan:
    def test_alpha_defaults_to_measured(self):
        prefs = complete_uniform(16, seed=0)
        plan = plan_almost_regular(prefs, 0.3, 0.1)
        assert plan.alpha == 1.0

    def test_alpha_override(self):
        prefs = complete_uniform(16, seed=0)
        plan = plan_almost_regular(prefs, 0.3, 0.1, alpha=2.0)
        assert plan.alpha == 2.0

    def test_budget_independent_of_n(self):
        """The whole point of Theorem 6: the schedule has no n in it."""
        p_small = plan_almost_regular(complete_uniform(8, seed=0), 0.3, 0.1)
        p_large = plan_almost_regular(
            complete_uniform(512, seed=0), 0.3, 0.1
        )
        assert (
            p_small.quantile_match_iterations
            == p_large.quantile_match_iterations
        )
        assert p_small.rounds_per_call == p_large.rounds_per_call

    def test_iterations_grow_with_alpha(self):
        prefs = complete_uniform(16, seed=0)
        p1 = plan_almost_regular(prefs, 0.3, 0.1, alpha=1.0)
        p4 = plan_almost_regular(prefs, 0.3, 0.1, alpha=4.0)
        assert p4.quantile_match_iterations > p1.quantile_match_iterations

    def test_invalid_parameters(self):
        prefs = complete_uniform(8, seed=0)
        with pytest.raises(InvalidParameterError):
            plan_almost_regular(prefs, 0.3, 0.0)
        with pytest.raises(InvalidParameterError):
            plan_almost_regular(prefs, 0.3, 0.1, alpha=0.5)


class TestAlmostRegularASM:
    @pytest.mark.parametrize("seed", range(4))
    def test_theorem6_complete(self, seed):
        prefs = complete_uniform(24, seed=seed)
        run = almost_regular_asm(prefs, 0.3, seed=seed)
        assert instability(prefs, run.matching) <= 0.3

    def test_regular_bipartite(self):
        prefs = regular_bipartite(20, 6, seed=1)
        run = almost_regular_asm(prefs, 0.4, seed=2)
        run.matching.validate_against(prefs)
        assert instability(prefs, run.matching) <= 0.4

    def test_almost_regular_workload(self):
        prefs = almost_regular(24, 6, 12, seed=3)
        run = almost_regular_asm(prefs, 0.4, seed=4)
        assert instability(prefs, run.matching) <= 0.4

    def test_removed_men_tracked_separately(self):
        prefs = complete_uniform(16, seed=5)
        run = almost_regular_asm(prefs, 0.4, seed=6)
        assert run.removed_men.isdisjoint(run.good_men)
        assert run.removed_men.isdisjoint(run.bad_men)
        # Removed men never end matched (they withdrew while free).
        for m in run.removed_men:
            assert run.matching.partner_of_man(m) is None

    def test_scheduled_rounds_independent_of_n(self):
        runs = [
            almost_regular_asm(complete_uniform(n, seed=0), 0.3, seed=0)
            for n in (8, 32, 128)
        ]
        assert len({r.rounds_scheduled for r in runs}) == 1

    def test_reproducible(self):
        prefs = complete_uniform(16, seed=7)
        a = almost_regular_asm(prefs, 0.3, seed=9)
        b = almost_regular_asm(prefs, 0.3, seed=9)
        assert a.matching == b.matching


class TestRemovalMechanism:
    def test_engine_removal_flag(self):
        """With remove_unmatched_violators and a weak AMM (1 iteration),
        violating men leave the game and the run still terminates with
        a valid matching."""
        prefs = complete_uniform(16, seed=8)
        engine = ASMEngine(
            prefs,
            0.4,
            mm_oracle=amm_oracle(0.5, 0.5, seed=1),
            remove_unmatched_violators=True,
        )
        run = engine.run_flat(10)
        run.matching.validate_against(prefs)
        assert run.good_men | run.bad_men | run.removed_men == frozenset(
            range(16)
        )
