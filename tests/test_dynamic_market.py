"""Tests for the mutable market state (``repro.dynamic.market``).

Every mutation must keep the four structures mutually consistent
(symmetry, duplicate-free lists, rank = position + 1) and
:meth:`DynamicMarket.freeze` must always yield a *validated*
``PreferenceProfile`` — freezing is how the invariants are audited.
"""

from __future__ import annotations

import pytest

from repro.core.preferences import PreferenceProfile
from repro.dynamic import DynamicMarket
from repro.errors import InvalidParameterError, InvalidPreferencesError
from repro.workloads.generators import complete_uniform, gnp_incomplete


def _assert_consistent(market: DynamicMarket) -> None:
    """Symmetry + rank-table invariants, via freeze's full validation."""
    frozen = market.freeze()
    assert frozen.num_edges == market.num_edges
    for m, lst in enumerate(market.men_lists):
        assert market.men_rank[m] == {w: r + 1 for r, w in enumerate(lst)}
    for w, lst in enumerate(market.women_lists):
        assert market.women_rank[w] == {m: r + 1 for r, m in enumerate(lst)}


class TestConstruction:
    def test_empty(self):
        market = DynamicMarket()
        assert market.n_men == market.n_women == market.num_edges == 0
        assert market.freeze().num_edges == 0

    def test_from_profile_copies(self):
        prefs = complete_uniform(5, seed=1)
        market = DynamicMarket(prefs)
        market.remove_edge(0, market.men_lists[0][0])
        # the source profile is untouched
        assert prefs.num_edges == 25
        assert market.num_edges == 24
        _assert_consistent(market)

    def test_freeze_round_trip(self):
        prefs = gnp_incomplete(8, 0.5, seed=3)
        frozen = DynamicMarket(prefs).freeze()
        assert frozen == prefs


class TestEdgeDeltas:
    def test_add_edge_positions(self):
        market = DynamicMarket(
            PreferenceProfile([[0, 1], [1]], [[0], [1, 0]])
        )
        market.add_edge(1, 0, man_pos=0, woman_pos=1)
        assert market.men_lists[1] == [0, 1]
        assert market.women_lists[0] == [0, 1]
        assert market.num_edges == 4
        _assert_consistent(market)

    def test_add_edge_appends_by_default(self):
        market = DynamicMarket(PreferenceProfile([[0]], [[0], []]))
        market.add_edge(0, 1)
        assert market.men_lists[0] == [0, 1]
        assert market.women_lists[1] == [0]
        _assert_consistent(market)

    def test_add_duplicate_edge_rejected(self):
        market = DynamicMarket(complete_uniform(3, seed=0))
        with pytest.raises(InvalidPreferencesError):
            market.add_edge(0, market.men_lists[0][0])

    def test_add_edge_position_out_of_range(self):
        market = DynamicMarket(PreferenceProfile([[0]], [[0], []]))
        with pytest.raises(InvalidParameterError):
            market.add_edge(0, 1, man_pos=5)

    def test_remove_edge(self):
        market = DynamicMarket(complete_uniform(4, seed=2))
        w = market.men_lists[1][2]
        market.remove_edge(1, w)
        assert w not in market.men_rank[1]
        assert 1 not in market.women_rank[w]
        assert market.num_edges == 15
        _assert_consistent(market)

    def test_remove_missing_edge_rejected(self):
        market = DynamicMarket(PreferenceProfile([[0]], [[0], []]))
        with pytest.raises(InvalidPreferencesError):
            market.remove_edge(0, 1)

    def test_player_out_of_range(self):
        market = DynamicMarket(complete_uniform(2, seed=0))
        with pytest.raises(InvalidParameterError):
            market.add_edge(5, 0)
        with pytest.raises(InvalidParameterError):
            market.remove_edge(0, -1)


class TestSwaps:
    def test_swap_man_adjacent(self):
        market = DynamicMarket(PreferenceProfile(
            [[0, 1, 2]], [[0], [0], [0]]
        ))
        up, down = market.swap_man_adjacent(0, 1)
        assert market.men_lists[0] == [0, 2, 1]
        assert (up, down) == (2, 1)
        assert market.men_rank[0] == {0: 1, 2: 2, 1: 3}
        _assert_consistent(market)

    def test_swap_woman_adjacent(self):
        market = DynamicMarket(PreferenceProfile(
            [[0], [0], [0]], [[0, 1, 2]]
        ))
        up, down = market.swap_woman_adjacent(0, 0)
        assert market.women_lists[0] == [1, 0, 2]
        assert (up, down) == (1, 0)
        _assert_consistent(market)

    def test_swap_position_out_of_range(self):
        market = DynamicMarket(PreferenceProfile([[0]], [[0]]))
        with pytest.raises(InvalidParameterError):
            market.swap_man_adjacent(0, 0)  # deg 1: nothing to swap
        with pytest.raises(InvalidParameterError):
            market.swap_woman_adjacent(0, -1)


class TestArrivalsDepartures:
    def test_add_man(self):
        market = DynamicMarket(complete_uniform(3, seed=1))
        m = market.add_man([2, 0], [0, 3])
        assert m == 3
        assert market.men_lists[3] == [2, 0]
        assert market.women_lists[2][0] == 3
        assert market.women_lists[0][3] == 3
        assert market.num_edges == 11
        _assert_consistent(market)

    def test_add_woman(self):
        market = DynamicMarket(complete_uniform(3, seed=1))
        w = market.add_woman([1], [1])
        assert w == 3
        assert market.men_lists[1][1] == 3
        _assert_consistent(market)

    def test_arrival_validation_is_atomic(self):
        market = DynamicMarket(complete_uniform(3, seed=1))
        before = market.freeze()
        with pytest.raises(InvalidPreferencesError):
            market.add_man([0, 0], [0, 0])  # duplicate entry
        with pytest.raises(InvalidParameterError):
            market.add_man([0, 1], [0])  # length mismatch
        with pytest.raises(InvalidParameterError):
            market.add_man([0], [99])  # position out of range
        # nothing was mutated by the failed arrivals
        assert market.freeze() == before
        assert market.n_men == 3

    def test_departure_tombstones(self):
        market = DynamicMarket(complete_uniform(4, seed=5))
        women = market.clear_man(2)
        assert sorted(women) == [0, 1, 2, 3]
        assert market.n_men == 4  # index retained
        assert market.men_lists[2] == []
        assert all(2 not in lst for lst in market.women_lists)
        assert market.num_edges == 12
        _assert_consistent(market)

    def test_departed_player_can_be_reconnected(self):
        market = DynamicMarket(complete_uniform(3, seed=0))
        market.clear_woman(1)
        market.add_edge(0, 1)
        assert market.women_lists[1] == [0]
        _assert_consistent(market)
