"""ε-stability SLO monitor: trajectory tracking, violation events,
and the satisfied/deadline semantics."""

from __future__ import annotations

import json

import pytest

from repro.core.asm import asm
from repro.errors import InvalidParameterError
from repro.obs.events import EventLog
from repro.trace.slo import SLOMonitor, StabilitySLO
from repro.workloads.generators import complete_uniform


def _run(n=12, eps=0.25, seed=0, **monitor_kwargs):
    prefs = complete_uniform(n, seed=seed)
    slo = monitor_kwargs.pop("slo", StabilitySLO(eps))
    monitor = SLOMonitor(prefs, slo, **monitor_kwargs)
    result = asm(prefs, eps, observer=monitor)
    return prefs, result, monitor


class TestStabilitySLO:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            StabilitySLO(1.5)
        with pytest.raises(InvalidParameterError):
            StabilitySLO(-0.1)
        with pytest.raises(InvalidParameterError):
            StabilitySLO(0.2, deadline_rounds=-1)

    def test_in_effect(self):
        assert not StabilitySLO(0.2).in_effect(100)
        slo = StabilitySLO(0.2, deadline_rounds=3)
        assert not slo.in_effect(3)
        assert slo.in_effect(4)

    def test_monitor_rejects_bad_cadence(self):
        prefs = complete_uniform(4, seed=0)
        with pytest.raises(InvalidParameterError):
            SLOMonitor(prefs, StabilitySLO(0.2), sample_every=0)


class TestSLOMonitor:
    def test_trajectory_is_recorded(self):
        _, _, monitor = _run()
        assert monitor.trajectory
        rounds = [r for r, _ in monitor.trajectory]
        assert rounds == sorted(rounds)
        assert all(0.0 <= eps <= 1.0 for _, eps in monitor.trajectory)

    def test_final_matching_meets_target(self):
        # Complete uniform instances converge to eps-stability, so the
        # no-deadline SLO must be satisfied.
        _, _, monitor = _run()
        assert monitor.satisfied
        assert monitor.final_eps is not None
        assert monitor.final_eps <= 0.25
        assert not monitor.violations

    def test_strict_deadline_catches_violations(self):
        _, _, monitor = _run(
            slo=StabilitySLO(0.001, deadline_rounds=0)
        )
        # With the bound binding from round 1, early rounds (almost
        # empty matchings) must breach it.
        assert monitor.violations
        assert not monitor.satisfied
        violation = monitor.violations[0]
        assert violation["eps"] > violation["target_eps"]

    def test_events_emitted(self):
        events = EventLog(enabled=True)
        _, _, monitor = _run(
            slo=StabilitySLO(0.001, deadline_rounds=0), events=events
        )
        kinds = [e.kind for e in events.events]
        assert "slo_sample" in kinds
        assert "slo_violation" in kinds
        sample = next(e for e in events.events if e.kind == "slo_sample")
        assert sample.fields["binding"] is True

    def test_sample_every_thins_samples(self):
        events_all = EventLog(enabled=True)
        _, _, monitor_all = _run(events=events_all)
        events_thin = EventLog(enabled=True)
        _, _, monitor_thin = _run(events=events_thin, sample_every=3)
        n_all = sum(
            1 for e in events_all.events if e.kind == "slo_sample"
        )
        n_thin = sum(
            1 for e in events_thin.events if e.kind == "slo_sample"
        )
        assert n_all == len(monitor_all.trajectory)
        assert n_thin == len(monitor_thin.trajectory) // 3

    def test_vacuous_without_observation(self):
        prefs = complete_uniform(4, seed=0)
        monitor = SLOMonitor(prefs, StabilitySLO(0.2))
        assert monitor.final_eps is None
        assert monitor.satisfied

    def test_inner_observer_delegation(self):
        calls = []

        class Probe:
            def on_proposal_round_end(self, engine, stats):
                calls.append("proposal")

            def on_quantile_match_end(self, engine):
                calls.append("qm")

            def on_outer_iteration_end(self, engine, stats):
                calls.append("outer")

        _run(inner=Probe())
        assert "proposal" in calls
        assert "qm" in calls
        assert "outer" in calls

    def test_report_is_json_safe(self):
        _, _, monitor = _run()
        report = monitor.report()
        json.dumps(report)
        assert report["satisfied"] is True
        assert report["rounds_observed"] == len(report["trajectory"])
        assert report["worst_eps"] >= report["final_eps"]

    def test_deterministic(self):
        _, _, a = _run()
        _, _, b = _run()
        assert a.trajectory == b.trajectory


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
