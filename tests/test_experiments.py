"""Tests for the experiment harness (all DESIGN.md §3 drivers)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)

# Small-scale kwargs so each driver runs in well under a second.
SMALL = {
    "e1": dict(n_values=(12, 16), eps_values=(0.3, 0.6), trials=1),
    "e2": dict(n_values=(8, 16, 32), trials=1),
    "e3": dict(n_values=(12,), trials=2),
    "e4": dict(n_values=(8, 16), trials=1),
    "e5": dict(n=16, trials=1),
    "e6": dict(n_values=(24,), trials=2),
    "e7": dict(n_values=(12,), trials=1),
    "e8": dict(n_values=(16,), trials=1),
    "e9": dict(n_values=(12,), trials=1),
    "e10": dict(n_values=(24,), trials=4),
    "e11": dict(n_values=(16, 32, 64), trials=1),
    "e12": dict(n_values=(10, 20), trials=1),
    "a1": dict(n=16, k_values=(2, 4), trials=1),
    "a2": dict(n=16, trials=1),
    "a3": dict(n_values=(5,)),
    "a4": dict(n=20, trials=1),
    "a5": dict(n_values=(12, 24), trials=1),
    "faults": dict(n_values=(6,)),
}


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_passes_at_small_scale(name):
    result = run_experiment(name, **SMALL[name])
    assert isinstance(result, ExperimentResult)
    assert result.rows, f"{name} produced no rows"
    assert result.passed, f"{name} failed: {result.table()}"


def test_every_experiment_has_small_config():
    assert set(SMALL) == set(ALL_EXPERIMENTS)


def test_run_experiment_unknown():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("zz9")


def test_table_rendering():
    result = run_experiment("e8", **SMALL["e8"])
    text = result.table()
    assert "[E8]" in text
    assert "verdict: PASS" in text


def test_experiment_deterministic():
    a = run_experiment("e1", **SMALL["e1"])
    b = run_experiment("e1", **SMALL["e1"])
    assert a.rows == b.rows


def test_entire_harness_deterministic():
    """Running every experiment twice at small scale yields identical
    rows, verdicts and notes — the whole harness is a pure function of
    its seeds."""
    for name in sorted(ALL_EXPERIMENTS):
        a = run_experiment(name, **SMALL[name])
        b = run_experiment(name, **SMALL[name])
        assert a.rows == b.rows, name
        assert a.passed == b.passed, name
        assert a.notes == b.notes, name


def test_failed_verdict_renders():
    result = ExperimentResult(
        experiment_id="X", title="t", paper_claim="c", rows=[{"a": 1}],
        passed=False, notes="because",
    )
    assert "FAIL" in result.table()
    assert "because" in result.table()
