"""Equivalence tests for ``repro.dynamic.index``.

The core contract: after *every* structural delta the
:class:`DynamicBlockingIndex` must agree exactly with a fresh
:class:`~repro.perf.blocking_index.BlockingPairIndex` built from a
frozen snapshot of the market — which itself is verified against the
full-scan oracle.  :meth:`DynamicBlockingIndex.verify` encodes that
double check; these tests run it after every delta of randomized
op sequences covering all eight delta kinds.
"""

from __future__ import annotations

import random

import pytest

from repro.core.preferences import PreferenceProfile
from repro.dynamic import DynamicBlockingIndex, DynamicMarket
from repro.errors import InvalidParameterError
from repro.workloads.generators import complete_uniform, gnp_incomplete


def _make(prefs):
    market = DynamicMarket(prefs)
    return market, DynamicBlockingIndex(market)


class TestConstruction:
    def test_empty_matching_all_mutual_pairs_block(self):
        prefs = complete_uniform(4, seed=0)
        _, index = _make(prefs)
        assert len(index) == prefs.num_edges
        assert index.eps() == 1.0
        index.verify()

    def test_with_initial_matching(self):
        prefs = complete_uniform(4, seed=0)
        market = DynamicMarket(prefs)
        from repro.core.asm import asm

        matching = asm(prefs, 0.5).matching
        index = DynamicBlockingIndex(market, matching)
        assert index.current_matching() == matching
        index.verify()

    def test_matching_with_non_edge_rejected(self):
        prefs = PreferenceProfile([[0]], [[0], []])
        from repro.core.matching import Matching

        with pytest.raises(InvalidParameterError):
            DynamicBlockingIndex(DynamicMarket(prefs), Matching([(0, 1)]))

    def test_empty_market_eps_zero(self):
        _, index = _make(None)
        assert index.eps() == 0.0
        index.verify()


class TestStructuralDeltas:
    def test_add_edge_reports_blocking(self):
        # both singles: a fresh mutual edge always blocks
        market, index = _make(complete_uniform(3, seed=1))
        market.remove_edge(0, 0)
        index = DynamicBlockingIndex(market)
        assert index.add_edge(0, 0, man_pos=0, woman_pos=0) is True
        index.verify()

    def test_add_edge_not_blocking_for_happy_man(self):
        # man 0 is married to his rank-1 choice; appending a new
        # last-place edge cannot block even though the woman is single
        market = DynamicMarket(
            PreferenceProfile([[1], []], [[], [0]])
        )
        index = DynamicBlockingIndex(market)
        index.satisfy(0, 1)
        assert index.add_edge(0, 0) is False
        index.verify()

    def test_remove_matched_edge_divorces(self):
        market, index = _make(complete_uniform(3, seed=2))
        index.satisfy(0, index.market.men_lists[0][0])
        w = index.man_partner(0)
        assert index.remove_edge(0, w) is True
        assert index.man_partner(0) is None
        assert index.woman_partner(w) is None
        index.verify()

    def test_remove_unmatched_edge(self):
        market, index = _make(complete_uniform(3, seed=2))
        assert index.remove_edge(1, 2) is False
        index.verify()

    def test_swap_rechecks_both_pairs(self):
        market, index = _make(complete_uniform(4, seed=3))
        for pos in range(3):
            index.swap_man_prefs(0, pos)
            index.verify()
            index.swap_woman_prefs(0, pos)
            index.verify()

    def test_arrival_rescans_new_player(self):
        market, index = _make(complete_uniform(3, seed=4))
        m = index.add_man([2, 0], [0, 3])
        assert m == 3
        index.verify()
        w = index.add_woman([0, 3], [0, 1])
        assert w == 3
        index.verify()

    def test_departure_of_matched_player(self):
        market, index = _make(complete_uniform(3, seed=5))
        index.satisfy(1, 2)
        assert index.depart_man(1) == 2
        assert index.woman_partner(2) is None
        assert all(1 not in lst for lst in market.women_lists)
        index.verify()
        assert index.depart_woman(0) is None
        index.verify()

    def test_eps_tracks_pool_and_edges(self):
        market, index = _make(complete_uniform(3, seed=6))
        assert index.eps() == pytest.approx(len(index) / market.num_edges)


class TestRandomOpSequences:
    """verify() after every delta of a random structural op mix."""

    @pytest.mark.parametrize("seed", range(4))
    def test_structural_churn(self, seed):
        prefs = gnp_incomplete(8, 0.6, seed=seed)
        market, index = _make(prefs)
        rng = random.Random(seed)
        for _ in range(60):
            op = rng.randrange(6)
            if op == 0 and market.num_edges:
                live = [m for m in range(market.n_men)
                        if market.men_lists[m]]
                m = rng.choice(live)
                w = rng.choice(market.men_lists[m])
                index.remove_edge(m, w)
            elif op == 1:
                m = rng.randrange(market.n_men)
                w = rng.randrange(market.n_women)
                if not market.has_edge(m, w):
                    index.add_edge(
                        m, w,
                        rng.randint(0, market.deg_man(m)),
                        rng.randint(0, market.deg_woman(w)),
                    )
            elif op == 2:
                swappable = [m for m in range(market.n_men)
                             if market.deg_man(m) >= 2]
                if swappable:
                    m = rng.choice(swappable)
                    index.swap_man_prefs(
                        m, rng.randrange(market.deg_man(m) - 1)
                    )
            elif op == 3:
                swappable = [w for w in range(market.n_women)
                             if market.deg_woman(w) >= 2]
                if swappable:
                    w = rng.choice(swappable)
                    index.swap_woman_prefs(
                        w, rng.randrange(market.deg_woman(w) - 1)
                    )
            elif op == 4:
                # marry a random blocking pair, if any
                pairs = index.pairs()
                if pairs:
                    index.satisfy(*rng.choice(pairs))
            else:
                m = rng.randrange(market.n_men)
                index.depart_man(m) if rng.random() < 0.5 else (
                    index.depart_woman(rng.randrange(market.n_women))
                )
            index.verify()
