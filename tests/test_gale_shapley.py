"""Tests for the Gale–Shapley baselines (centralized, parallel, truncated)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import enumerate_stable_matchings
from repro.analysis.stability import count_blocking_pairs, is_stable
from repro.baselines.gale_shapley import (
    ROUNDS_PER_GS_ITERATION,
    gale_shapley,
    parallel_gale_shapley,
)
from repro.baselines.truncated_gs import (
    suggested_iterations,
    truncated_gale_shapley,
)
from repro.core.preferences import PreferenceProfile
from repro.errors import InvalidParameterError
from repro.workloads.generators import (
    adversarial_gale_shapley,
    bounded_degree,
    complete_uniform,
    gnp_incomplete,
)


class TestCentralized:
    def test_tiny_instance_known_output(self, tiny_prefs):
        # Rotated preferences: every man gets his first choice.
        result = gale_shapley(tiny_prefs)
        assert set(result.matching.pairs()) == {(0, 0), (1, 1), (2, 2)}
        assert is_stable(tiny_prefs, result.matching)

    def test_stability_on_random(self, small_complete):
        assert is_stable(small_complete, gale_shapley(small_complete).matching)

    def test_unmatchable_players(self):
        # Two men both only rank woman 0.
        prefs = PreferenceProfile([[0], [0]], [[1, 0]])
        result = gale_shapley(prefs)
        assert len(result.matching) == 1
        assert result.matching.partner_of_woman(0) == 1
        assert is_stable(prefs, result.matching)

    def test_empty_instance(self):
        result = gale_shapley(PreferenceProfile([], []))
        assert len(result.matching) == 0
        assert result.proposals == 0

    def test_isolated_players(self):
        prefs = PreferenceProfile([[], [0]], [[1], []])
        result = gale_shapley(prefs)
        assert result.matching.partner_of_man(1) == 0
        assert result.matching.partner_of_man(0) is None

    def test_man_optimality_brute_force(self):
        """GS output is man-optimal among all stable matchings."""
        for seed in range(6):
            prefs = complete_uniform(4, seed=seed)
            gs = gale_shapley(prefs).matching
            stable = enumerate_stable_matchings(prefs)
            assert gs in stable
            for other in stable:
                for m in range(4):
                    gs_rank = prefs.rank_of_woman(m, gs.partner_of_man(m))
                    other_rank = prefs.rank_of_woman(
                        m, other.partner_of_man(m)
                    )
                    assert gs_rank <= other_rank

    def test_adversarial_proposal_count(self):
        result = gale_shapley(adversarial_gale_shapley(10))
        assert result.proposals == 55


class TestParallel:
    def test_matches_sequential_complete(self):
        for seed in range(5):
            prefs = complete_uniform(9, seed=seed)
            assert (
                parallel_gale_shapley(prefs).matching
                == gale_shapley(prefs).matching
            )

    def test_matches_sequential_incomplete(self):
        for seed in range(5):
            prefs = gnp_incomplete(10, 0.4, seed=seed)
            assert (
                parallel_gale_shapley(prefs).matching
                == gale_shapley(prefs).matching
            )

    def test_round_accounting(self):
        prefs = complete_uniform(6, seed=0)
        result = parallel_gale_shapley(prefs)
        assert result.completed
        assert result.rounds == result.iterations * ROUNDS_PER_GS_ITERATION

    def test_adversarial_linear_iterations(self):
        # All-identical preferences: iteration t settles woman t.
        n = 15
        result = parallel_gale_shapley(adversarial_gale_shapley(n))
        assert result.completed
        assert result.iterations == n

    def test_empty(self):
        result = parallel_gale_shapley(PreferenceProfile([], []))
        assert result.completed
        assert result.iterations == 0


class TestTruncated:
    def test_zero_budget_empty_matching(self, small_complete):
        result = truncated_gale_shapley(small_complete, 0)
        assert len(result.matching) == 0
        assert not result.completed

    def test_large_budget_completes(self, small_complete):
        result = truncated_gale_shapley(small_complete, 10_000)
        assert result.completed
        assert is_stable(small_complete, result.matching)

    def test_blocking_pairs_decrease_with_budget(self):
        prefs = complete_uniform(20, seed=3)
        counts = [
            count_blocking_pairs(
                prefs, truncated_gale_shapley(prefs, t).matching
            )
            for t in (0, 2, 8, 10_000)
        ]
        assert counts[0] >= counts[1] >= counts[-1]
        assert counts[-1] == 0

    def test_negative_budget_rejected(self, small_complete):
        with pytest.raises(InvalidParameterError):
            truncated_gale_shapley(small_complete, -1)

    def test_suggested_iterations_shape(self):
        assert suggested_iterations(4, 0.5) == 32
        assert suggested_iterations(0, 0.5) == 1
        with pytest.raises(InvalidParameterError):
            suggested_iterations(4, 0)
        with pytest.raises(InvalidParameterError):
            suggested_iterations(-1, 0.5)

    def test_bounded_lists_converge_in_constant_rounds(self):
        """The Floréen et al. regime: with degree bound d, a budget
        depending only on (d, eps) reaches low instability across n."""
        d, eps = 4, 0.2
        budget = suggested_iterations(d, eps)
        for n in (30, 60):
            prefs = bounded_degree(n, d, seed=1)
            result = truncated_gale_shapley(prefs, budget)
            bp = count_blocking_pairs(prefs, result.matching)
            assert bp <= eps * prefs.num_edges


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 9), p=st.floats(0.2, 1.0), seed=st.integers(0, 100))
def test_parallel_equals_sequential_property(n, p, seed):
    prefs = gnp_incomplete(n, p, seed=seed)
    assert (
        parallel_gale_shapley(prefs).matching == gale_shapley(prefs).matching
    )
