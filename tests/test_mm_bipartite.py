"""Tests for the deterministic bipartite port-order maximal matching."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stability import instability
from repro.core.asm import asm
from repro.errors import InvalidParameterError
from repro.graphs import Graph, bipartite_graph_from_edges
from repro.mm.bipartite import (
    ROUNDS_PER_PORT_ROUND,
    bipartite_port_order_matching,
)
from repro.mm.oracles import port_order_oracle
from repro.mm.verify import is_maximal_matching
from repro.workloads.generators import complete_uniform, gnp_incomplete


def bipartite_from_gnp(n: int, p: float, seed: int) -> Graph:
    prefs = gnp_incomplete(n, p, seed)
    return bipartite_graph_from_edges(prefs.iter_edges(), n, n)


class TestPortOrder:
    def test_maximal_on_random_bipartite(self):
        for seed in range(8):
            g = bipartite_from_gnp(15, 0.3, seed)
            result = bipartite_port_order_matching(g)
            assert is_maximal_matching(g, result.partner)

    def test_empty_graph(self):
        assert bipartite_port_order_matching(Graph()).size == 0

    def test_rounds_bounded_by_max_degree(self):
        g = bipartite_from_gnp(20, 0.4, seed=1)
        result = bipartite_port_order_matching(g)
        max_deg = max(g.degree(v) for v in g.nodes())
        assert result.rounds <= max_deg * ROUNDS_PER_PORT_ROUND

    def test_deterministic(self):
        g = bipartite_from_gnp(12, 0.5, seed=2)
        assert (
            bipartite_port_order_matching(g).partner
            == bipartite_port_order_matching(g).partner
        )

    def test_non_bipartite_rejected(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)  # triangle
        with pytest.raises(InvalidParameterError, match="bipartite"):
            bipartite_port_order_matching(g)

    def test_star_graph(self):
        g = Graph()
        for leaf in range(1, 6):
            g.add_edge(("L", 0), ("R", leaf))
        result = bipartite_port_order_matching(g)
        assert result.size == 1
        assert is_maximal_matching(g, result.partner)

    def test_disconnected_components(self):
        g = Graph()
        g.add_edge("a1", "b1")
        g.add_edge("a2", "b2")
        g.add_node("iso")
        result = bipartite_port_order_matching(g)
        assert result.size == 2


class TestAsOracleInASM:
    def test_asm_guarantee_with_port_order(self):
        prefs = complete_uniform(20, seed=0)
        run = asm(prefs, 0.3, mm_oracle=port_order_oracle())
        assert instability(prefs, run.matching) <= 0.3

    def test_asm_incomplete_with_port_order(self):
        prefs = gnp_incomplete(16, 0.4, seed=3)
        run = asm(prefs, 0.4, mm_oracle=port_order_oracle(),
                  check_invariants=True)
        run.matching.validate_against(prefs)
        assert instability(prefs, run.matching) <= 0.4


@settings(max_examples=30, deadline=None)
@given(n=st.integers(0, 14), p=st.floats(0, 0.8), seed=st.integers(0, 50))
def test_port_order_always_maximal_property(n, p, seed):
    g = bipartite_from_gnp(n, p, seed)
    result = bipartite_port_order_matching(g)
    assert is_maximal_matching(g, result.partner)
