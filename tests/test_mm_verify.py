"""Unit tests for repro.mm.verify (Definitions 3 and 4)."""

from __future__ import annotations

from repro.graphs import Graph
from repro.mm.verify import (
    is_almost_maximal_matching,
    is_maximal_matching,
    is_valid_matching,
    violating_vertices,
)


def path_graph(n: int) -> Graph:
    g = Graph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestValidity:
    def test_empty_matching_valid(self):
        assert is_valid_matching(path_graph(4), {})

    def test_symmetric_edge_valid(self):
        assert is_valid_matching(path_graph(4), {0: 1, 1: 0})

    def test_asymmetric_invalid(self):
        assert not is_valid_matching(path_graph(4), {0: 1})

    def test_self_match_invalid(self):
        g = path_graph(3)
        assert not is_valid_matching(g, {0: 0})

    def test_non_edge_invalid(self):
        assert not is_valid_matching(path_graph(4), {0: 2, 2: 0})


class TestMaximality:
    def test_path4_middle_edge_maximal(self):
        # 0-1-2-3 with {1,2} matched: 0 and 3 have no unmatched neighbor.
        assert is_maximal_matching(path_graph(4), {1: 2, 2: 1})

    def test_path4_end_edge_not_maximal(self):
        # {0,1} matched leaves edge {2,3} unmatched.
        g = path_graph(4)
        assert not is_maximal_matching(g, {0: 1, 1: 0})
        assert set(violating_vertices(g, {0: 1, 1: 0})) == {2, 3}

    def test_empty_graph_empty_matching_maximal(self):
        assert is_maximal_matching(Graph(), {})

    def test_isolated_vertices_dont_violate(self):
        g = Graph()
        g.add_node("a")
        g.add_edge("b", "c")
        assert is_maximal_matching(g, {"b": "c", "c": "b"})

    def test_invalid_matching_never_maximal(self):
        assert not is_maximal_matching(path_graph(2), {0: 1})


class TestAlmostMaximality:
    def test_eta_threshold(self):
        g = path_graph(4)
        partner = {0: 1, 1: 0}  # 2 of 4 vertices violate
        assert is_almost_maximal_matching(g, partner, eta=0.5)
        assert not is_almost_maximal_matching(g, partner, eta=0.4)

    def test_maximal_is_always_almost_maximal(self):
        g = path_graph(5)
        partner = {0: 1, 1: 0, 2: 3, 3: 2}
        assert is_maximal_matching(g, partner)
        assert is_almost_maximal_matching(g, partner, eta=0.0)

    def test_invalid_matching_rejected(self):
        assert not is_almost_maximal_matching(path_graph(2), {0: 1}, eta=1.0)
