"""Tests for the CONGEST simulator and message model."""

from __future__ import annotations

import pytest

from repro.congest.message import TAG_BITS, Message
from repro.congest.simulator import Simulator
from repro.errors import ProtocolViolationError, SimulationError
from repro.graphs import Graph


def line_graph():
    g = Graph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


def silent(rounds):
    """A program that listens for `rounds` rounds and returns them."""

    def program():
        seen = []
        for _ in range(rounds):
            inbox = yield {}
            seen.append(dict(inbox))
        return seen

    return program()


class TestMessage:
    def test_size_no_payload(self):
        assert Message("X").size_bits(100) == TAG_BITS

    def test_size_with_payload(self):
        msg = Message("X", (3, 4))
        assert msg.size_bits(256) == TAG_BITS + 2 * (8 + 1)

    def test_size_grows_with_n(self):
        msg = Message("X", (3,))
        assert msg.size_bits(2 ** 20) > msg.size_bits(4)

    def test_frozen(self):
        msg = Message("X")
        with pytest.raises(AttributeError):
            msg.kind = "Y"


class TestDelivery:
    def test_one_hop_delivery(self):
        g = line_graph()

        def sender():
            yield {"b": Message("PING")}
            yield {}

        programs = {"a": sender(), "b": silent(2), "c": silent(2)}
        sim = Simulator(g, programs)
        sim.run()
        # b's first round inbox contains the PING from a.
        assert sim.results["b"][0] == {"a": Message("PING")}
        assert sim.results["b"][1] == {}
        assert sim.results["c"] == [{}, {}]

    def test_same_round_exchange(self):
        """Messages sent in round t arrive at the end of round t."""
        g = line_graph()

        def talker(to):
            def program():
                inbox = yield {to: Message("HI")}
                return inbox

            return program()

        programs = {"a": talker("b"), "b": talker("a"), "c": silent(1)}
        sim = Simulator(g, programs)
        sim.run()
        assert sim.results["a"] == {"b": Message("HI")}
        assert sim.results["b"] == {"a": Message("HI")}

    def test_stats_counting(self):
        g = line_graph()

        def sender():
            yield {"b": Message("PING"), }
            yield {"b": Message("PONG", (1,))}

        programs = {"a": sender(), "b": silent(2), "c": silent(2)}
        sim = Simulator(g, programs)
        stats = sim.run()
        assert stats.messages == 2
        assert stats.rounds >= 2
        assert stats.total_bits == Message("PING").size_bits(3) + Message(
            "PONG", (1,)
        ).size_bits(3)
        assert stats.max_message_bits == Message("PONG", (1,)).size_bits(3)


class TestValidation:
    def test_non_neighbor_send_rejected(self):
        g = line_graph()

        def bad():
            yield {"c": Message("X")}  # a and c are not adjacent

        programs = {"a": bad(), "b": silent(1), "c": silent(1)}
        sim = Simulator(g, programs)
        with pytest.raises(ProtocolViolationError, match="non-neighbor"):
            sim.run()

    def test_non_message_rejected(self):
        g = line_graph()

        def bad():
            yield {"b": "raw string"}

        programs = {"a": bad(), "b": silent(1), "c": silent(1)}
        with pytest.raises(ProtocolViolationError, match="non-Message"):
            Simulator(g, programs).run()

    def test_oversized_message_rejected(self):
        g = line_graph()
        big = Message("X", tuple(range(100)))

        def bad():
            yield {"b": big}

        programs = {"a": bad(), "b": silent(1), "c": silent(1)}
        with pytest.raises(ProtocolViolationError, match="bits"):
            Simulator(g, programs).run()

    def test_missing_program_rejected(self):
        g = line_graph()
        with pytest.raises(SimulationError, match="no program"):
            Simulator(g, {"a": silent(1)})

    def test_unknown_node_program_rejected(self):
        g = line_graph()
        programs = {
            "a": silent(1),
            "b": silent(1),
            "c": silent(1),
            "zz": silent(1),
        }
        with pytest.raises(SimulationError, match="unknown node"):
            Simulator(g, programs)

    def test_max_rounds_exceeded(self):
        g = line_graph()

        def forever():
            while True:
                yield {}

        programs = {"a": forever(), "b": forever(), "c": forever()}
        sim = Simulator(g, programs)
        with pytest.raises(SimulationError, match="still running"):
            sim.run(max_rounds=5)

    def test_finished_property(self):
        g = line_graph()
        programs = {"a": silent(1), "b": silent(1), "c": silent(1)}
        sim = Simulator(g, programs)
        assert not sim.finished
        sim.run()
        assert sim.finished
        # Stepping a finished simulation is a no-op returning False.
        assert sim.step() is False


class TestDeliveryProperty:
    def test_random_delivery_model_check(self):
        """Model-based check: for random graphs and random scripted
        outboxes, every sent message (and nothing else) is delivered to
        exactly the right node in the right round."""
        import random as _random

        from repro.congest.recorder import MessageRecorder

        for seed in range(5):
            rng = _random.Random(seed)
            g = Graph()
            nodes = list(range(6))
            for v in nodes:
                g.add_node(v)
            for u in nodes:
                for v in nodes:
                    if u < v and rng.random() < 0.5:
                        g.add_edge(u, v)
            rounds = 4
            # Script: plan[v][t] = {nbr: Message} chosen at random.
            plan = {}
            for v in nodes:
                nbrs = sorted(g.neighbors(v))
                plan[v] = []
                for t in range(rounds):
                    outbox = {}
                    for u in nbrs:
                        if rng.random() < 0.4:
                            outbox[u] = Message("M", (t,))
                    plan[v].append(outbox)

            received = {v: [] for v in nodes}

            def program(v):
                def run():
                    for t in range(rounds):
                        inbox = yield plan[v][t]
                        received[v].append(dict(inbox))
                    return None

                return run()

            rec = MessageRecorder()
            sim = Simulator(
                g, {v: program(v) for v in nodes}, recorder=rec
            )
            sim.run()
            # Check exact delivery.
            expected_total = 0
            for v in nodes:
                for t in range(rounds):
                    for u, msg in plan[v][t].items():
                        expected_total += 1
                        assert received[u][t][v] == msg
            assert sim.stats.messages == expected_total
            assert rec.total_messages == expected_total


class TestBitCap:
    def test_cap_scales_with_factor(self):
        g = line_graph()
        a = Simulator(
            g, {"a": silent(1), "b": silent(1), "c": silent(1)},
            bit_cap_factor=2,
        )
        b = Simulator(
            g, {"a": silent(1), "b": silent(1), "c": silent(1)},
            bit_cap_factor=16,
        )
        assert b.max_message_bits == 8 * a.max_message_bits
