"""Tests for the message-level protocols (GS, maximal matching, ASM)."""

from __future__ import annotations

import pytest

from repro.analysis.stability import instability
from repro.baselines.gale_shapley import gale_shapley
from repro.congest.protocols import (
    run_congest_asm,
    run_congest_deterministic_mm,
    run_congest_gale_shapley,
    run_congest_israeli_itai_mm,
    run_congest_port_order_mm,
)
from repro.core.asm import ASMEngine
from repro.graphs import bipartite_graph_from_edges, man_node
from repro.mm.bipartite import bipartite_port_order_matching
from repro.mm.deterministic import deterministic_maximal_matching
from repro.mm.verify import is_maximal_matching, is_valid_matching
from repro.workloads.generators import complete_uniform, gnp_incomplete


class TestCongestGaleShapley:
    @pytest.mark.parametrize("seed", range(4))
    def test_equals_centralized_complete(self, seed):
        prefs = complete_uniform(7, seed=seed)
        matching, sim = run_congest_gale_shapley(prefs)
        assert matching == gale_shapley(prefs).matching
        assert sim.stats.messages > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_equals_centralized_incomplete(self, seed):
        prefs = gnp_incomplete(8, 0.5, seed=seed)
        matching, _sim = run_congest_gale_shapley(prefs)
        assert matching == gale_shapley(prefs).matching

    def test_message_sizes_within_cap(self):
        prefs = complete_uniform(6, seed=1)
        _, sim = run_congest_gale_shapley(prefs)
        assert sim.stats.max_message_bits <= sim.max_message_bits


class TestCongestMaximalMatching:
    @pytest.mark.parametrize("seed", range(4))
    def test_deterministic_equals_logical(self, seed):
        prefs = gnp_incomplete(8, 0.5, seed=seed)
        g = bipartite_graph_from_edges(prefs.iter_edges(), 8, 8)
        congest = run_congest_deterministic_mm(g)
        logical = deterministic_maximal_matching(g)
        assert congest.partner == logical.partner
        assert is_maximal_matching(g, congest.partner)

    def test_israeli_itai_maximal_with_budget(self):
        prefs = gnp_incomplete(10, 0.4, seed=2)
        g = bipartite_graph_from_edges(prefs.iter_edges(), 10, 10)
        result = run_congest_israeli_itai_mm(g, iterations=40, seed=3)
        assert is_maximal_matching(g, result.partner)

    def test_israeli_itai_truncated_valid(self):
        prefs = gnp_incomplete(10, 0.4, seed=2)
        g = bipartite_graph_from_edges(prefs.iter_edges(), 10, 10)
        result = run_congest_israeli_itai_mm(g, iterations=1, seed=3)
        assert is_valid_matching(g, result.partner)

    def test_empty_graph(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_node("x")
        result = run_congest_deterministic_mm(g)
        assert result.partner == {}

    @pytest.mark.parametrize("seed", range(4))
    def test_port_order_equals_logical(self, seed):
        prefs = gnp_incomplete(9, 0.5, seed=seed)
        g = bipartite_graph_from_edges(prefs.iter_edges(), 9, 9)
        left = [man_node(m) for m in range(9)]
        congest = run_congest_port_order_mm(g, left)
        logical = bipartite_port_order_matching(g, left_nodes=left)
        assert congest.partner == logical.partner
        assert is_maximal_matching(g, congest.partner)


class TestCongestAlmostRegularASM:
    @pytest.mark.parametrize("seed", range(3))
    def test_removal_mode_identical_to_logical_engine(self, seed):
        """Deterministic configuration with a deliberately weak MM
        budget (1 pointer iteration) so Definition-3 violators really
        occur: the MM_FREE removal protocol must match the logical
        engine's remove_unmatched_violators exactly."""
        from repro.congest.protocols import run_congest_almost_regular_asm
        from repro.core.asm import ASMEngine

        prefs = complete_uniform(6, seed=seed)
        iterations, mm_budget = 8, 1
        congest = run_congest_almost_regular_asm(
            prefs,
            eps=0.5,
            quantile_match_iterations=iterations,
            mm_iterations=mm_budget,
            mm_kind="pointer",
        )
        engine = ASMEngine(
            prefs,
            0.5,
            k=congest.schedule.k,
            mm_oracle=lambda g: deterministic_maximal_matching(
                g, max_iterations=mm_budget
            ),
            remove_unmatched_violators=True,
        )
        logical = engine.run_flat(iterations)
        assert congest.matching == logical.matching

    def test_randomized_default_quality(self):
        from repro.congest.protocols import run_congest_almost_regular_asm

        prefs = complete_uniform(8, seed=2)
        result = run_congest_almost_regular_asm(
            prefs,
            eps=0.5,
            seed=4,
            quantile_match_iterations=12,
            mm_iterations=6,
        )
        result.matching.validate_against(prefs)
        assert instability(prefs, result.matching) <= 0.5

    def test_flat_schedule_flag_in_result(self):
        from repro.congest.protocols import run_congest_almost_regular_asm

        prefs = complete_uniform(5, seed=1)
        result = run_congest_almost_regular_asm(
            prefs, eps=0.5, quantile_match_iterations=4, mm_iterations=3
        )
        assert result.schedule.flat_schedule
        assert result.schedule.remove_violators
        assert result.schedule.inner_iterations == 1


class TestCongestASM:
    @pytest.mark.parametrize("seed", range(3))
    def test_identical_to_logical_engine(self, seed):
        """The headline cross-validation (DESIGN.md §4): the
        message-level protocol and the logical engine produce the same
        matching when configured identically."""
        prefs = complete_uniform(6, seed=seed)
        k, inner, outer, mm_iters = 4, 5, 3, 12
        congest = run_congest_asm(
            prefs,
            0.5,
            k=k,
            inner_iterations=inner,
            outer_iterations=outer,
            mm_iterations=mm_iters,
        )
        engine = ASMEngine(
            prefs,
            0.5,
            k=k,
            inner_iterations=inner,
            outer_iterations=outer,
            mm_oracle=lambda g: deterministic_maximal_matching(
                g, max_iterations=mm_iters
            ),
        )
        assert congest.matching == engine.run().matching

    def test_incomplete_preferences_identical(self):
        prefs = gnp_incomplete(7, 0.6, seed=5)
        congest = run_congest_asm(
            prefs,
            0.5,
            k=4,
            inner_iterations=5,
            outer_iterations=3,
            mm_iterations=14,
        )
        engine = ASMEngine(
            prefs,
            0.5,
            k=4,
            inner_iterations=5,
            outer_iterations=3,
            mm_oracle=lambda g: deterministic_maximal_matching(
                g, max_iterations=14
            ),
        )
        assert congest.matching == engine.run().matching

    @pytest.mark.parametrize("seed", range(3))
    def test_port_order_kind_identical_to_logical_engine(self, seed):
        """Third mm_kind: the port-order oracle cross-validates too."""
        from repro.mm.bipartite import bipartite_port_order_matching as bpo
        from repro.graphs import is_man_node

        prefs = gnp_incomplete(6, 0.6, seed=10 + seed)
        congest = run_congest_asm(
            prefs,
            0.5,
            k=4,
            inner_iterations=5,
            outer_iterations=3,
            mm_iterations=12,
            mm_kind="port_order",
        )
        engine = ASMEngine(
            prefs,
            0.5,
            k=4,
            inner_iterations=5,
            outer_iterations=3,
            mm_oracle=lambda g: bpo(
                g, left_nodes=[v for v in g.nodes() if is_man_node(v)]
            ),
        )
        assert congest.matching == engine.run().matching

    def test_randomized_variant_quality(self):
        """RandASM at message level: stability holds even though exact
        per-node randomness differs from the logical engine."""
        prefs = complete_uniform(6, seed=1)
        congest = run_congest_asm(
            prefs,
            0.5,
            k=4,
            inner_iterations=6,
            outer_iterations=3,
            mm_iterations=12,
            mm_kind="israeli_itai",
            seed=7,
        )
        congest.matching.validate_against(prefs)
        assert instability(prefs, congest.matching) <= 0.6

    def test_full_default_schedule_small_instance(self):
        """Defaults (paper schedule) work end-to-end on a tiny instance."""
        prefs = complete_uniform(4, seed=2)
        congest = run_congest_asm(prefs, eps=1.0)
        assert instability(prefs, congest.matching) <= 1.0
        assert congest.stats.rounds > 0

    def test_equivalence_property_random_instances(self):
        """Property-style sweep: logical == message-level on a batch of
        random tiny instances (complete and incomplete)."""
        from repro.workloads.generators import gnp_incomplete as gnp

        for seed in range(6):
            prefs = gnp(5, 0.7, seed=100 + seed)
            congest = run_congest_asm(
                prefs,
                0.5,
                k=3,
                inner_iterations=4,
                outer_iterations=3,
                mm_iterations=10,
            )
            engine = ASMEngine(
                prefs,
                0.5,
                k=3,
                inner_iterations=4,
                outer_iterations=3,
                mm_oracle=lambda g: deterministic_maximal_matching(
                    g, max_iterations=10
                ),
            )
            assert congest.matching == engine.run().matching, (
                f"divergence at seed {seed}"
            )

    def test_message_bits_within_cap(self):
        prefs = complete_uniform(6, seed=3)
        congest = run_congest_asm(
            prefs,
            0.5,
            k=4,
            inner_iterations=4,
            outer_iterations=3,
            mm_iterations=12,
        )
        # All ASM messages are tag-only: well inside O(log n).
        assert congest.stats.max_message_bits == 8
