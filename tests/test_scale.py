"""Moderate-scale smoke tests: the library at realistic sizes.

These runs take ~0.1–2 s each and guard against both correctness and
performance regressions at sizes the benchmarks exercise.
"""

from __future__ import annotations

import time

from repro.analysis.stability import instability
from repro.baselines.gale_shapley import gale_shapley
from repro.core.asm import asm
from repro.core.almost_regular import almost_regular_asm
from repro.core.rand_asm import rand_asm
from repro.workloads.generators import (
    complete_uniform,
    euclidean,
    gnp_incomplete,
)


class TestScale:
    def test_asm_complete_512(self):
        prefs = complete_uniform(512, seed=0)
        t0 = time.perf_counter()
        run = asm(prefs, 0.2)
        elapsed = time.perf_counter() - t0
        assert instability(prefs, run.matching) <= 0.2
        assert len(run.matching) == 512
        assert elapsed < 30.0  # generous CI budget; ~2-4s locally

    def test_asm_sparse_1024(self):
        prefs = gnp_incomplete(1024, 0.02, seed=1)
        run = asm(prefs, 0.25)
        assert instability(prefs, run.matching) <= 0.25

    def test_rand_asm_256(self):
        prefs = complete_uniform(256, seed=2)
        run = rand_asm(prefs, 0.25, seed=3)
        assert instability(prefs, run.matching) <= 0.25

    def test_almost_regular_512(self):
        prefs = complete_uniform(512, seed=4)
        run = almost_regular_asm(prefs, 0.3, seed=5)
        assert instability(prefs, run.matching) <= 0.3
        # Theorem 6: the schedule is the same one the n=32 case gets.
        small = almost_regular_asm(complete_uniform(32, seed=4), 0.3, seed=5)
        assert run.rounds_scheduled == small.rounds_scheduled

    def test_gale_shapley_1024(self):
        prefs = complete_uniform(1024, seed=6)
        result = gale_shapley(prefs)
        assert len(result.matching) == 1024

    def test_euclidean_large_sparse(self):
        prefs = euclidean(600, seed=7)
        run = asm(prefs, 0.25)
        run.matching.validate_against(prefs)
        assert instability(prefs, run.matching) <= 0.25

    def test_tight_eps_moderate_n(self):
        """eps = 0.05 means k = 160 quantiles; the engine must stay
        responsive and within bound."""
        prefs = complete_uniform(128, seed=8)
        run = asm(prefs, 0.05)
        assert instability(prefs, run.matching) <= 0.05
