"""Engine edge cases: suppression placement on decorated and
multi-line statements, scope/exempt precedence, and syntax-error
handling (reported as ``E000``, never a crash)."""

from __future__ import annotations

from pathlib import Path

from repro.lint import LintConfig, run_lint
from repro.lint.config import DEFAULT_EXEMPT, DEFAULT_SCOPES


def _write(tmp_path: Path, relpath: str, source: str) -> Path:
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestSuppressionPlacement:
    def test_multiline_statement_suppressed_at_violation_line(self, tmp_path):
        # The violation anchors at the iterable inside the comprehension
        # (line 5), not at the statement's first line; the suppression
        # comment belongs there.
        target = _write(
            tmp_path,
            "src/repro/core/m.py",
            "def f(items):\n"
            "    pool = set(items)\n"
            "    return [\n"
            "        x\n"
            "        for x in pool  # lint: ignore[DET001]\n"
            "    ]\n",
        )
        report = run_lint([target], LintConfig())
        assert report.ok
        assert report.suppressed == 1

    def test_multiline_statement_first_line_comment_does_not_apply(
        self, tmp_path
    ):
        # A comment on the statement's opening line does not cover a
        # violation anchored three lines down — placement is per-line.
        target = _write(
            tmp_path,
            "src/repro/core/m.py",
            "def f(items):\n"
            "    pool = set(items)\n"
            "    return [  # lint: ignore[DET001]\n"
            "        x\n"
            "        for x in pool\n"
            "    ]\n",
        )
        report = run_lint([target], LintConfig())
        assert [v.rule for v in report.violations] == ["DET001"]
        assert report.violations[0].line == 5

    def test_suppression_inside_decorated_function(self, tmp_path):
        # Decorators shift statement linenos; tokenize-based comment
        # location must still pair the comment with the violating line.
        target = _write(
            tmp_path,
            "src/repro/core/d.py",
            "import functools\n"
            "\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def f(items):\n"
            "    pool = frozenset(items)\n"
            "    return [x for x in pool]  # lint: ignore[DET001]\n",
        )
        report = run_lint([target], LintConfig())
        assert report.ok
        assert report.suppressed == 1

    def test_decorator_line_comment_does_not_leak_to_body(self, tmp_path):
        target = _write(
            tmp_path,
            "src/repro/core/d.py",
            "import functools\n"
            "\n"
            "@functools.lru_cache(maxsize=None)  # lint: ignore[DET001]\n"
            "def f(items):\n"
            "    pool = frozenset(items)\n"
            "    return [x for x in pool]\n",
        )
        report = run_lint([target], LintConfig())
        assert [v.rule for v in report.violations] == ["DET001"]

    def test_suppression_marker_inside_string_is_ignored(self, tmp_path):
        # The marker is found via tokenize, so a string literal that
        # merely *contains* the marker text suppresses nothing.
        target = _write(
            tmp_path,
            "src/repro/core/s.py",
            "def f(items):\n"
            "    pool = set(items)\n"
            '    note = "lint: ignore[DET001]"\n'
            "    return [x for x in pool], note\n",
        )
        report = run_lint([target], LintConfig())
        assert [v.rule for v in report.violations] == ["DET001"]
        assert report.suppressed == 0


class TestScopePrecedence:
    SNIPPET = (
        "def f(items):\n"
        "    pool = set(items)\n"
        "    return [x for x in pool]\n"
    )

    def test_exempt_beats_scope_inclusion(self, tmp_path):
        # The file is inside the scope's path set AND inside its exempt
        # list; exemption wins.
        target = _write(tmp_path, "src/repro/core/sub/e.py", self.SNIPPET)
        config = LintConfig(
            scopes={**DEFAULT_SCOPES, "determinism": ("src/repro/core",)},
            exempt={**DEFAULT_EXEMPT, "determinism": ("src/repro/core/sub",)},
        )
        report = run_lint([target], config)
        assert "DET001" not in [v.rule for v in report.violations]

    def test_exempt_is_per_scope(self, tmp_path):
        # Exempting a path for one scope must not exempt it for others.
        config = LintConfig(
            exempt={**DEFAULT_EXEMPT, "library": ("src/repro/core",)}
        )
        target = _write(tmp_path, "src/repro/core/e.py", self.SNIPPET)
        report = run_lint([target], config)
        assert "DET001" in [v.rule for v in report.violations]

    def test_exempt_file_entry_matches_exact_file(self, tmp_path):
        config = LintConfig(
            exempt={
                **DEFAULT_EXEMPT,
                "determinism": ("src/repro/core/skipme.py",),
            }
        )
        skipped = _write(tmp_path, "src/repro/core/skipme.py", self.SNIPPET)
        kept = _write(tmp_path, "src/repro/core/keepme.py", self.SNIPPET)
        report = run_lint([skipped, kept], config)
        assert [v.path for v in report.violations if v.rule == "DET001"] == [
            kept.as_posix()
        ]


class TestSyntaxErrors:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        target = _write(
            tmp_path,
            "src/repro/core/broken.py",
            "def f(:\n    pass\n",
        )
        report = run_lint([target], LintConfig())
        assert [v.rule for v in report.violations] == ["E000"]
        violation = report.violations[0]
        assert violation.path == target.as_posix()
        assert violation.line >= 1
        assert "syntax error" in violation.message
        assert report.files_scanned == 1

    def test_broken_file_does_not_block_others(self, tmp_path):
        _write(tmp_path, "src/repro/core/broken.py", "while True\n")
        _write(
            tmp_path,
            "src/repro/core/fine.py",
            TestScopePrecedence.SNIPPET,
        )
        report = run_lint([tmp_path / "src"], LintConfig())
        rules = sorted(v.rule for v in report.violations)
        assert rules == ["DET001", "E000"]

    def test_broken_file_does_not_break_flow_analysis(self, tmp_path):
        # Project rules analyze every *parseable* file; a syntax error
        # surfaces as E000 while the flow pass still runs on the rest.
        _write(tmp_path, "src/repro/core/broken.py", "def f(:\n")
        _write(
            tmp_path,
            "src/repro/congest/protocols/p.py",
            "from repro.congest.message import Message\n"
            "\n"
            "def propose(graph, v):\n"
            "    active = set(graph[v])\n"
            "    inbox = yield {u: Message('PROPOSE') for u in active}\n"
            "    return inbox\n",
        )
        report = run_lint([tmp_path / "src"], LintConfig(flow=True))
        rules = {v.rule for v in report.violations}
        assert "E000" in rules
        assert "FLOW001" in rules
