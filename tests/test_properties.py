"""Seeded property sweep for the paper's invariants.

Checks, over ``REPRO_PROPERTY_TRIALS`` (default 200) randomized
instances per invariant:

* **Lemma 1** — a woman's match only improves: once matched she stays
  matched, and her partner's rank strictly improves on every change.
* **Lemma 2** — after every QuantileMatch, each man is matched or his
  active proposal set is exhausted (all current-quantile proposals
  rejected).
* **Theorem 3** — the final matching has at most ``ε·|E|`` blocking
  pairs.

Each invariant is checked on both ``ASMEngine`` paths (optimized and
reference — they must also agree exactly) and, on a reduced pinned
subset, on the fault-free CONGEST protocol.  Instances are generated
with the stdlib ``random`` module from a fixed root seed, so the sweep
is deterministic; crank ``REPRO_PROPERTY_TRIALS`` up for a deeper
soak.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.analysis.stability import count_blocking_pairs
from repro.congest.protocols.asm_protocol import run_congest_asm
from repro.core.asm import ASMEngine, ASMObserver
from repro.faults import FaultPlan
from repro.mm.deterministic import deterministic_maximal_matching
from repro.workloads.generators import complete_uniform, gnp_incomplete

#: Instances per invariant; the CI fault-smoke job reduces this.
TRIALS = int(os.environ.get("REPRO_PROPERTY_TRIALS", "200"))

_ROOT = random.Random(0xA5A5)
_CASES = [
    (
        _ROOT.randint(3, 8),
        _ROOT.choice([0.3, 0.5, 0.8, 1.0]),
        _ROOT.randrange(2**31),
        _ROOT.random() < 0.3,  # incomplete lists for ~30% of cases
    )
    for _ in range(TRIALS)
]


def _profile(n, seed, incomplete):
    if incomplete:
        return gnp_incomplete(n, 0.6, seed)
    return complete_uniform(n, seed)


class InvariantObserver(ASMObserver):
    """Collects Lemma 1 / Lemma 2 violations across one engine run."""

    def __init__(self, prefs):
        self.prefs = prefs
        self.partner_rank = {}
        self.violations = []

    def _check_lemma1(self, engine):
        for w, m in enumerate(engine.woman_partner):
            old = self.partner_rank.get(w)
            if m is None:
                if old is not None:
                    self.violations.append(
                        ("lemma1-unmatched", w, old)
                    )
                continue
            rank = self.prefs.rank_of_man(w, m)
            if old is not None and rank >= old:
                if rank > old:
                    self.violations.append(("lemma1-worse", w, old, rank))
                # rank == old means same partner: fine.
            self.partner_rank[w] = (
                rank if old is None else min(old, rank)
            )

    def on_proposal_round_end(self, engine, stats):
        self._check_lemma1(engine)

    def on_quantile_match_end(self, engine):
        self._check_lemma1(engine)
        for m in range(engine.n_men):
            if engine.removed[m]:
                continue
            if engine.man_partner[m] is None and engine.active[m]:
                self.violations.append(
                    ("lemma2-active-left", m, dict(engine.active[m]))
                )


def _run_engine(prefs, eps, optimized):
    observer = InvariantObserver(prefs)
    engine = ASMEngine(
        prefs,
        eps,
        check_invariants=True,
        observer=observer,
        optimized=optimized,
    )
    result = engine.run()
    return result, observer


@pytest.mark.parametrize("optimized", [True, False], ids=["opt", "ref"])
def test_engine_invariants_hold_over_sweep(optimized):
    """Lemmas 1-2 and the Theorem 3 bound over the randomized sweep."""
    for n, eps, seed, incomplete in _CASES:
        prefs = _profile(n, seed, incomplete)
        if prefs.num_edges == 0:
            continue
        result, observer = _run_engine(prefs, eps, optimized)
        assert not observer.violations, (
            f"invariant violations on n={n} eps={eps} seed={seed} "
            f"incomplete={incomplete}: {observer.violations[:3]}"
        )
        blocking = count_blocking_pairs(prefs, result.matching)
        assert blocking <= eps * prefs.num_edges, (
            f"Theorem 3 violated on n={n} eps={eps} seed={seed}: "
            f"{blocking} > {eps * prefs.num_edges}"
        )


def test_engine_paths_agree_over_sweep():
    """The optimized and reference ProposalRound paths are bit-equal."""
    for n, eps, seed, incomplete in _CASES:
        prefs = _profile(n, seed, incomplete)
        if prefs.num_edges == 0:
            continue
        fast = ASMEngine(prefs, eps, optimized=True).run()
        ref = ASMEngine(prefs, eps, optimized=False).run()
        assert fast.matching == ref.matching, (
            f"paths diverge on n={n} eps={eps} seed={seed}"
        )
        assert fast.to_dict() == ref.to_dict()


# ----------------------------------------------------------------------
# Fault-free CONGEST subset (reduced count: each run is a full
# message-level simulation)
# ----------------------------------------------------------------------

CONGEST_TRIALS = max(4, min(TRIALS // 8, 25))
_CONGEST_SCHED = dict(k=4, inner_iterations=6, outer_iterations=4)


def _congest_cases():
    rng = random.Random(0xC0DE)
    return [
        (rng.randint(4, 7), rng.choice([0.5, 0.8]), rng.randrange(2**31))
        for _ in range(CONGEST_TRIALS)
    ]


def test_congest_matches_engine_and_eps_bound():
    """Differential grid: message-level ASM equals the logical engine
    (both paths) on the same truncated schedule, and its output
    respects the ε-bound on every pinned instance."""
    for n, eps, seed in _congest_cases():
        prefs = complete_uniform(n, seed)
        mm_iters = 2 * n
        congest = run_congest_asm(
            prefs, eps, mm_iterations=mm_iters, **_CONGEST_SCHED
        )
        for optimized in (True, False):
            engine = ASMEngine(
                prefs,
                eps,
                k=_CONGEST_SCHED["k"],
                inner_iterations=_CONGEST_SCHED["inner_iterations"],
                outer_iterations=_CONGEST_SCHED["outer_iterations"],
                mm_oracle=lambda g: deterministic_maximal_matching(
                    g, max_iterations=mm_iters
                ),
                optimized=optimized,
            )
            logical = engine.run()
            assert congest.matching == logical.matching, (
                f"congest != engine(optimized={optimized}) on "
                f"n={n} eps={eps} seed={seed}"
            )
        blocking = count_blocking_pairs(prefs, congest.matching)
        assert blocking <= eps * prefs.num_edges


def test_congest_zero_rate_plan_is_inert_over_grid():
    """A zero-rate FaultPlan never changes a CONGEST run's output."""
    for n, eps, seed in _congest_cases()[: max(3, CONGEST_TRIALS // 2)]:
        prefs = complete_uniform(n, seed)
        kwargs = dict(mm_iterations=2 * n, **_CONGEST_SCHED)
        plain = run_congest_asm(prefs, eps, **kwargs)
        nulled = run_congest_asm(
            prefs, eps, faults=FaultPlan(seed=seed), **kwargs
        )
        assert nulled.matching == plain.matching
        assert nulled.stats.rounds == plain.stats.rounds
        assert nulled.stats.messages == plain.stats.messages
        assert nulled.fault_trace == ()
