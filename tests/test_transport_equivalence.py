"""Cross-transport equivalence suite (ISSUE 10).

Three families of guarantees, in decreasing strictness:

1. **Zero-latency identity** — :class:`AsyncEventTransport` and
   :class:`ShardedTransport` with a zero-bound latency model are
   *bit-identical* to the default :class:`SyncTransport` lockstep
   delivery: same matching, same ``SimulationStats``, same telemetry
   counters/events, same causal-trace ids.  The async code path with
   ``latency == 0`` must be indistinguishable from sync.
2. **Seeded determinism** — under nonzero latency the run is still a
   pure function of ``(instance, schedule, latency model, link_seed)``:
   repeated runs are identical, and the sharded backend matches the
   single-process async backend for every worker count.
3. **Theorem-3 under latency** — with *sparse* latency (the
   ``geometric:0.1:2`` envelope, mirroring the ``delay_rate=0.1``
   precedent in ``tests/test_faults.py``) the ASM output still
   satisfies the paper's ε·|E| blocking-pair bound on every seeded
   trial.  Dense latency (every message late) degrades the matching
   instead — the protocol's re-proposal phases can absorb occasional
   delays, not a permanent offset — so the fuzz pins the sparse
   envelope deliberately.

``REPRO_PROPERTY_TRIALS`` scales the fuzz budget (default 200).
"""

from __future__ import annotations

import os
import random
from dataclasses import asdict

import pytest

from repro.analysis.stability import count_blocking_pairs
from repro.congest import (
    AsyncEventTransport,
    ShardedTransport,
    SyncTransport,
)
from repro.congest.protocols.asm_protocol import (
    run_congest_almost_regular_asm,
    run_congest_asm,
    run_congest_rand_asm,
)
from repro.congest.protocols.gs_protocol import run_congest_gale_shapley
from repro.errors import InvalidParameterError, SimulationError
from repro.obs import Telemetry
from repro.trace import CausalTracer
from repro.workloads import (
    ZERO_LATENCY,
    FixedLatency,
    GeometricLatency,
    PerLinkLatency,
    UniformLatency,
    complete_uniform,
    gnp_incomplete,
    parse_latency,
)

TRIALS = int(os.environ.get("REPRO_PROPERTY_TRIALS", "200"))

# Truncated-but-sufficient schedule used across the grid (same shape as
# tests/test_properties.py).
_SCHED = dict(k=4, inner_iterations=6, outer_iterations=4)


def _profiles():
    return [
        ("complete5", complete_uniform(5, seed=1)),
        ("gnp6", gnp_incomplete(6, 0.6, seed=2)),
    ]


def _run_asm(prefs, transport, telemetry):
    return run_congest_asm(
        prefs,
        0.5,
        mm_iterations=2 * prefs.n_men,
        telemetry=telemetry,
        transport=transport,
        **_SCHED,
    )


def _run_rand_asm(prefs, transport, telemetry):
    return run_congest_rand_asm(
        prefs,
        0.5,
        failure_prob=0.2,
        seed=3,
        inner_iterations=6,
        outer_iterations=4,
        mm_iterations=2 * prefs.n_men,
        telemetry=telemetry,
        transport=transport,
    )


def _run_almost_regular(prefs, transport, telemetry):
    return run_congest_almost_regular_asm(
        prefs,
        0.5,
        failure_prob=0.2,
        seed=3,
        quantile_match_iterations=4,
        mm_iterations=2 * prefs.n_men,
        telemetry=telemetry,
        transport=transport,
    )


class _GSResult:
    """Adapter giving Gale–Shapley runs the same snapshot surface."""

    def __init__(self, matching, sim):
        self.matching = matching
        self.stats = sim.stats


def _run_gs(prefs, transport, telemetry):
    matching, sim = run_congest_gale_shapley(
        prefs, telemetry=telemetry, transport=transport
    )
    return _GSResult(matching, sim)


_RUNNERS = {
    "asm": _run_asm,
    "rand-asm": _run_rand_asm,
    "almost-regular": _run_almost_regular,
    "gale-shapley": _run_gs,
}

# Zero-bound transports that must be indistinguishable from sync.
_ZERO_TRANSPORTS = {
    "sync": lambda: None,
    "sync-explicit": lambda: SyncTransport(),
    "async-zero": lambda: AsyncEventTransport(),
    "async-fixed0": lambda: AsyncEventTransport(FixedLatency(0)),
    "sharded-zero": lambda: ShardedTransport(workers=2),
}


def _scrub_events(records):
    """Event records minus wall-clock fields (``t``, ``seconds``)."""
    return [
        {k: v for k, v in rec.items() if k not in ("t", "seconds")}
        for rec in records
    ]


def _scrub_metrics(state):
    """Metrics state minus wall-clock histograms (``*_seconds``)."""
    return {
        "counters": state["counters"],
        "gauges": state["gauges"],
        "histograms": {
            k: v
            for k, v in state["histograms"].items()
            if not k.endswith("_seconds")
        },
    }


def _snapshot(runner, prefs, transport):
    """Full observable fingerprint of one run.

    Covers the matching, the round/message/bit statistics, the metrics
    registry, the event log, and the causal-trace records — everything
    the transport could perturb.  Wall-clock fields are scrubbed; they
    vary between any two runs regardless of transport.
    """
    tracer = CausalTracer()
    telemetry = Telemetry.create(tracer=tracer)
    result = runner(prefs, transport, telemetry)
    return {
        "pairs": sorted(
            (repr(a), repr(b)) for a, b in result.matching.pairs()
        ),
        "stats": asdict(result.stats),
        "metrics": _scrub_metrics(telemetry.metrics.raw_state()),
        "events": _scrub_events(telemetry.events.to_records()),
        "trace": tracer.to_records(),
    }


# ----------------------------------------------------------------------
# 1. Zero-latency identity: async/sharded(0) ≡ sync, bit for bit
# ----------------------------------------------------------------------


class TestZeroLatencyIdentity:
    @pytest.mark.parametrize("proto", sorted(_RUNNERS))
    @pytest.mark.parametrize(
        "name", [k for k in _ZERO_TRANSPORTS if k != "sync"]
    )
    def test_bit_identical_to_sync(self, proto, name):
        runner = _RUNNERS[proto]
        for _, prefs in _profiles():
            base = _snapshot(runner, prefs, _ZERO_TRANSPORTS["sync"]())
            other = _snapshot(runner, prefs, _ZERO_TRANSPORTS[name]())
            assert other == base, f"{name} diverged from sync on {proto}"

    def test_zero_latency_transport_reports_no_reordering(self):
        assert SyncTransport().reorders is False
        assert AsyncEventTransport().reorders is False
        assert AsyncEventTransport(UniformLatency(0, 2)).reorders is True
        assert ShardedTransport(FixedLatency(1)).reorders is True

    def test_zero_latency_async_defers_nothing(self):
        transport = AsyncEventTransport()
        prefs = complete_uniform(5, seed=1)
        _run_asm(prefs, transport, None)
        assert transport.deferred == 0
        assert transport.in_flight() == 0
        assert transport.latency_counts == {}


# ----------------------------------------------------------------------
# 2. Seeded determinism under nonzero latency
# ----------------------------------------------------------------------

_LATENCY_GRID = [
    FixedLatency(1),
    UniformLatency(0, 2),
    PerLinkLatency(0, 1),
    GeometricLatency(0.3, 3),
]


class TestSeededDeterminism:
    @pytest.mark.parametrize(
        "latency", _LATENCY_GRID, ids=lambda m: m.kind
    )
    def test_repeat_runs_byte_identical(self, latency):
        prefs = gnp_incomplete(6, 0.6, seed=2)
        runs = [
            _snapshot(
                _run_asm,
                prefs,
                AsyncEventTransport(latency, link_seed=5),
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("workers", [1, 3])
    def test_sharded_matches_async_any_worker_count(self, workers):
        prefs = complete_uniform(6, seed=4)
        latency = UniformLatency(0, 2)
        base = _snapshot(
            _run_asm, prefs, AsyncEventTransport(latency, link_seed=7)
        )
        sharded = ShardedTransport(
            latency, link_seed=7, workers=workers, min_batch=1
        )
        try:
            got = _snapshot(_run_asm, prefs, sharded)
        finally:
            sharded.close()
        assert got == base

    def test_latency_perturbs_the_run(self):
        prefs = complete_uniform(6, seed=4)
        transport = AsyncEventTransport(FixedLatency(1), link_seed=0)
        _run_asm(prefs, transport, None)
        assert transport.deferred > 0
        assert transport.delivered_late > 0
        assert transport.latency_counts == {1: transport.deferred}

    def test_deferral_accounting_balances(self):
        prefs = gnp_incomplete(6, 0.6, seed=2)
        transport = AsyncEventTransport(
            GeometricLatency(0.4, 3), link_seed=11
        )
        _run_asm(prefs, transport, None)
        assert transport.deferred == (
            transport.delivered_late
            + transport.dropped_late
            + transport.in_flight()
        )

    def test_deferral_metrics_recorded(self):
        prefs = complete_uniform(5, seed=1)
        transport = AsyncEventTransport(FixedLatency(1), link_seed=0)
        telemetry = Telemetry.create()
        _run_asm(prefs, transport, telemetry)
        state = telemetry.metrics.raw_state()
        counters = state["counters"]
        assert counters["congest.transport_deferred"] == transport.deferred
        assert "congest.transport_latency" in state["histograms"]

    def test_transport_cannot_be_rebound(self):
        prefs = complete_uniform(4, seed=0)
        transport = AsyncEventTransport(FixedLatency(1))
        _run_asm(prefs, transport, None)
        with pytest.raises(SimulationError):
            _run_asm(prefs, transport, None)

    def test_describe_round_trips_the_latency_model(self):
        transport = AsyncEventTransport(UniformLatency(1, 3), link_seed=9)
        desc = transport.describe()
        assert desc["kind"] == "async"
        assert desc["latency"] == UniformLatency(1, 3).to_dict()
        assert desc["link_seed"] == 9
        sharded = ShardedTransport(FixedLatency(2), workers=4)
        desc = sharded.describe()
        assert desc["kind"] == "sharded"
        assert desc["workers"] == 4


# ----------------------------------------------------------------------
# 3. Latency model zoo: pure, seeded, bounded
# ----------------------------------------------------------------------


class TestLatencyModels:
    def test_draws_are_pure_functions(self):
        for model in _LATENCY_GRID:
            a = model.draw(5, 3, "m:0", "w:1")
            b = model.draw(5, 3, "m:0", "w:1")
            assert a == b

    def test_draws_respect_bound(self):
        rng = random.Random(99)
        for model in _LATENCY_GRID:
            for _ in range(50):
                lat = model.draw(
                    rng.randrange(2**31),
                    rng.randrange(100),
                    f"m:{rng.randrange(8)}",
                    f"w:{rng.randrange(8)}",
                )
                assert 0 <= lat <= model.bound()

    def test_perlink_is_round_independent(self):
        model = PerLinkLatency(0, 3)
        draws = {model.draw(7, r, "m:2", "w:5") for r in range(20)}
        assert len(draws) == 1

    def test_uniform_varies_by_round(self):
        model = UniformLatency(0, 3)
        draws = {model.draw(7, r, "m:2", "w:5") for r in range(50)}
        assert len(draws) > 1

    def test_parse_latency_grammar(self):
        assert parse_latency("zero") == ZERO_LATENCY
        assert parse_latency("fixed:2") == FixedLatency(2)
        assert parse_latency("uniform:1-3") == UniformLatency(1, 3)
        assert parse_latency("perlink:0-2") == PerLinkLatency(0, 2)
        assert parse_latency("geometric:0.3:4") == GeometricLatency(0.3, 4)

    @pytest.mark.parametrize(
        "spec",
        ["", "bogus", "fixed:-1", "uniform:3-1", "geometric:1.5:2", "uniform:x-y"],
    )
    def test_parse_latency_rejects_bad_specs(self, spec):
        with pytest.raises(InvalidParameterError):
            parse_latency(spec)

    def test_to_dict_identifies_the_model(self):
        kinds = {m.to_dict()["kind"] for m in _LATENCY_GRID}
        assert kinds == {"fixed", "uniform", "perlink", "geometric"}


# ----------------------------------------------------------------------
# 4. Theorem 3 under sparse latency: ≥ TRIALS seeded runs, all within
#    the ε·|E| blocking-pair bound
# ----------------------------------------------------------------------


class TestTheorem3UnderLatency:
    def test_eps_bound_survives_sparse_latency(self):
        rng = random.Random(0xA5B3)
        checked = 0
        while checked < TRIALS:
            n = rng.randint(3, 6)
            eps = rng.choice([0.5, 0.8])
            seed = rng.randrange(2**31)
            if rng.random() < 0.3:
                prefs = gnp_incomplete(n, 0.7, seed)
            else:
                prefs = complete_uniform(n, seed)
            if prefs.num_edges == 0:
                continue
            transport = AsyncEventTransport(
                GeometricLatency(0.1, 2),
                link_seed=rng.randrange(2**31),
            )
            result = run_congest_asm(
                prefs,
                eps,
                mm_iterations=2 * n,
                transport=transport,
                **_SCHED,
            )
            blocking = count_blocking_pairs(prefs, result.matching)
            assert blocking <= eps * prefs.num_edges, (
                f"eps bound violated: n={n} eps={eps} seed={seed} "
                f"blocking={blocking} edges={prefs.num_edges}"
            )
            checked += 1
