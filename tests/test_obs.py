"""Tests for the unified telemetry layer (``repro.obs``)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.trace import TraceObserver
from repro.congest.message import Message
from repro.congest.protocols import run_congest_asm
from repro.congest.recorder import MessageRecorder
from repro.congest.simulator import Simulator
from repro.core.asm import asm
from repro.core.almost_regular import almost_regular_asm
from repro.core.rand_asm import rand_asm
from repro.errors import InvalidParameterError
from repro.graphs import Graph
from repro.io import load_events, load_metrics, save_events, save_metrics
from repro.obs import (
    EVENT_KINDS,
    EventLog,
    MetricsObserver,
    MetricsRegistry,
    NULL_TELEMETRY,
    RunManifest,
    Telemetry,
    histogram_summary,
    percentile,
)
from repro.workloads.generators import complete_uniform, gnp_incomplete


class TestMetricsRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 0)
        assert reg.counters == {"a": 5, "b": 0}

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 2.5)
        assert reg.gauges["g"] == 2.5

    def test_histogram_summary_stats(self):
        reg = MetricsRegistry()
        for v in [3.0, 1.0, 2.0, 4.0]:
            reg.observe("h", v)
        summary = reg.to_dict()["histograms"]["h"]
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == 2.0
        assert summary["p95"] == 4.0
        assert summary["mean"] == 2.5

    def test_percentile_nearest_rank(self):
        values = sorted(float(i) for i in range(1, 101))
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 95.0) == 95.0
        assert percentile(values, 100.0) == 100.0
        assert percentile([7.0], 50.0) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_histogram_summary_helper(self):
        assert histogram_summary([2.0])["p95"] == 2.0

    def test_timer_records_elapsed(self):
        reg = MetricsRegistry()
        with reg.timer("t") as timer:
            pass
        assert timer.elapsed is not None and timer.elapsed >= 0.0
        assert reg.to_dict()["histograms"]["t"]["count"] == 1

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1.0)
        with reg.timer("t"):
            pass
        assert reg.counters == {}
        assert reg.gauges == {}
        assert reg.histograms == {}

    def test_disabled_timer_is_shared_singleton(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.timer("a") is reg.timer("b")


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit("congest_round", round=1, messages=2, bits=16)
        log.emit("message_batch", round=1, kinds={"PING": 2})
        assert len(log) == 2
        assert [e.kind for e in log.by_kind("congest_round")] == [
            "congest_round"
        ]
        assert log.count_by_kind() == {"congest_round": 1, "message_batch": 1}

    def test_schema_is_closed(self):
        log = EventLog()
        with pytest.raises(InvalidParameterError):
            log.emit("not_a_kind")

    def test_extra_kinds_extend_schema(self):
        log = EventLog(extra_kinds=["custom"])
        log.emit("custom", x=1)
        assert log.events[0].fields == {"x": 1}

    def test_timestamps_monotone_and_seq_dense(self):
        log = EventLog()
        for i in range(5):
            log.emit("congest_round", round=i)
        ts = [e.t for e in log.events]
        assert ts == sorted(ts)
        assert [e.seq for e in log.events] == list(range(5))

    def test_disabled_log_drops_everything(self):
        log = EventLog(enabled=False)
        log.emit("congest_round", round=1)
        log.emit("not_even_validated")
        assert len(log) == 0

    def test_records_are_flat_and_json_safe(self):
        log = EventLog()
        log.emit("congest_round", round=3, messages=1, bits=8)
        record = log.to_records()[0]
        assert record["kind"] == "congest_round"
        assert record["round"] == 3
        json.dumps(record)  # must not raise

    def test_schema_constant(self):
        assert EVENT_KINDS == {
            "proposal_round",
            "quantile_match",
            "outer_iteration",
            "congest_round",
            "message_batch",
            "trial_chunk",
            "fault",
            "slo_sample",
            "slo_violation",
            "dynamic_delta",
            "dynamic_fallback",
        }


class TestRunManifest:
    def test_capture_and_finish(self):
        m = RunManifest.capture(
            algorithm="asm", workload="complete", n=16, seed=3,
            params={"eps": 0.5}, note="test",
        )
        assert m.finished_at is None
        m.finish()
        d = m.to_dict()
        assert d["algorithm"] == "asm"
        assert d["params"] == {"eps": 0.5}
        assert d["extra"] == {"note": "test"}
        assert d["started_at"] <= d["finished_at"]
        assert d["python_version"].count(".") == 2

    def test_round_trip(self):
        m = RunManifest.capture(algorithm="rand-asm", n=8)
        m.finish()
        again = RunManifest.from_dict(m.to_dict())
        assert again.to_dict() == m.to_dict()

    def test_record_fault_plan(self):
        from repro.faults.harness import fault_plan_for_profile
        from repro.workloads.generators import complete_uniform

        prefs = complete_uniform(6, seed=0)
        plan = fault_plan_for_profile(
            prefs,
            fault_seed=7,
            drop_rate=0.2,
            delay_rate=0.1,
            crash_nodes=1,
            crash_round=3,
            restart_after=2,
        )
        m = RunManifest.capture(algorithm="congest-asm", n=6)
        m.record_fault_plan(plan)
        faults = m.to_dict()["extra"]["faults"]
        assert faults["seed"] == 7
        assert faults["drop_rate"] == 0.2
        assert faults["delay_rate"] == 0.1
        assert len(faults["crashes"]) == 1
        crash = faults["crashes"][0]
        assert crash["round"] == 3
        assert crash["restart_round"] == 5
        json.dumps(faults)  # must be JSON-safe


class TestTelemetry:
    def test_null_telemetry_disabled(self):
        assert not NULL_TELEMETRY.enabled
        with NULL_TELEMETRY.timer("x"):
            pass
        NULL_TELEMETRY.events.emit("anything-goes-here")  # no-op, unvalidated
        assert NULL_TELEMETRY.metrics.histograms == {}

    def test_create_enabled(self):
        tel = Telemetry.create()
        assert tel.enabled
        with tel.timer("x"):
            pass
        assert "x" in tel.metrics.histograms


class TestEnginePhaseTiming:
    def test_phases_timed_when_enabled(self):
        tel = Telemetry.create()
        result = asm(complete_uniform(12, seed=0), eps=0.5, telemetry=tel)
        hists = tel.metrics.histogram_summaries()
        for phase in (
            "asm.phase.propose",
            "asm.phase.accept_reject",
            "asm.phase.maximal_matching",
        ):
            assert phase in hists
            assert hists[phase]["count"] >= result.proposal_rounds_executed
            assert {"p50", "p95", "max"} <= set(hists[phase])

    def test_no_telemetry_means_no_observation(self):
        result = asm(complete_uniform(12, seed=0), eps=0.5)
        assert result.matching  # engine default is the shared null bundle
        assert NULL_TELEMETRY.metrics.histograms == {}

    def test_telemetry_does_not_change_behavior(self):
        prefs = gnp_incomplete(16, 0.5, seed=7)
        plain = asm(prefs, 0.3)
        timed = asm(prefs, 0.3, telemetry=Telemetry.create())
        assert plain.matching == timed.matching
        assert plain.rounds_active == timed.rounds_active

    def test_variants_accept_telemetry(self):
        prefs = complete_uniform(12, seed=1)
        for runner in (
            lambda tel: rand_asm(prefs, 0.4, seed=1, telemetry=tel),
            lambda tel: almost_regular_asm(prefs, 0.4, seed=1, telemetry=tel),
        ):
            tel = Telemetry.create()
            runner(tel)
            assert "asm.phase.propose" in tel.metrics.histograms


class TestMetricsObserver:
    def test_counters_match_result(self):
        obs = MetricsObserver()
        result = asm(complete_uniform(16, seed=2), eps=0.4, observer=obs)
        counters = obs.telemetry.metrics.counters
        assert counters["asm.messages.proposes"] == result.messages.proposes
        assert counters["asm.messages.accepts"] == result.messages.accepts
        assert counters["asm.messages.rejects"] == result.messages.rejects
        assert counters["asm.proposal_rounds"] == (
            result.proposal_rounds_executed
        )
        assert counters["asm.quantile_match_calls"] == (
            result.quantile_match_calls_executed
        )
        assert counters["asm.outer_iterations"] == len(
            result.outer_iterations
        )

    def test_event_stream_schema(self):
        obs = MetricsObserver()
        result = asm(complete_uniform(12, seed=3), eps=0.5, observer=obs)
        log = obs.telemetry.events
        assert len(log.by_kind("proposal_round")) == (
            result.proposal_rounds_executed
        )
        assert len(log.by_kind("quantile_match")) == (
            result.quantile_match_calls_executed
        )
        assert len(log.by_kind("outer_iteration")) == len(
            result.outer_iterations
        )
        first = log.by_kind("proposal_round")[0]
        assert {"proposals", "accepts", "rejects", "matching_size"} <= set(
            first.fields
        )

    def test_final_gauges(self):
        obs = MetricsObserver()
        result = asm(complete_uniform(12, seed=4), eps=0.5, observer=obs)
        gauges = obs.telemetry.metrics.gauges
        assert gauges["asm.matching_size"] == len(result.matching)
        assert gauges["asm.good_men"] == len(result.good_men)


class TestSimulatorTelemetry:
    def _run_ping(self, telemetry=None, recorder=None):
        g = Graph()
        g.add_edge("a", "b")

        def pinger():
            for _ in range(3):
                yield {"b": Message("PING")}

        def listener():
            for _ in range(3):
                yield {}

        sim = Simulator(
            g, {"a": pinger(), "b": listener()},
            recorder=recorder, telemetry=telemetry,
        )
        sim.run()
        return sim

    def test_round_events_and_counters(self):
        tel = Telemetry.create()
        sim = self._run_ping(telemetry=tel)
        counters = tel.metrics.counters
        assert counters["congest.rounds"] == sim.stats.rounds
        assert counters["congest.messages"] == sim.stats.messages
        assert counters["congest.bits"] == sim.stats.total_bits
        rounds = tel.events.by_kind("congest_round")
        assert len(rounds) == sim.stats.rounds
        assert [e.fields["messages"] for e in rounds] == (
            sim.stats.messages_per_round
        )
        assert all(e.fields["seconds"] >= 0.0 for e in rounds)
        hist = tel.metrics.histogram_summaries()["congest.round_seconds"]
        assert hist["count"] == sim.stats.rounds

    def test_message_batches_match_recorder(self):
        tel = Telemetry.create()
        rec = MessageRecorder()
        self._run_ping(telemetry=tel, recorder=rec)
        batches = tel.events.by_kind("message_batch")
        total_by_kind = {}
        for e in batches:
            for kind, count in e.fields["kinds"].items():
                total_by_kind[kind] = total_by_kind.get(kind, 0) + count
        assert total_by_kind == dict(rec.counts_by_kind)

    def test_no_telemetry_default(self):
        sim = self._run_ping()
        assert sim.telemetry is NULL_TELEMETRY
        assert sim.stats.messages == 3

    def test_congest_asm_driver_threads_telemetry(self):
        tel = Telemetry.create()
        result = run_congest_asm(
            complete_uniform(4, seed=0), eps=0.5,
            inner_iterations=2, outer_iterations=2, mm_iterations=4,
            telemetry=tel,
        )
        assert tel.metrics.counters["congest.rounds"] == result.stats.rounds
        assert tel.metrics.counters["congest.messages"] == (
            result.stats.messages
        )


class TestRecorderEventBridge:
    def test_emit_events_exact_despite_cap_and_filter(self):
        g = Graph()
        g.add_edge("a", "b")

        def pinger():
            for _ in range(4):
                yield {"b": Message("PING")}

        def ponger():
            outbox = {}
            for _ in range(5):
                inbox = yield outbox
                outbox = (
                    {"a": Message("PONG")}
                    if any(m.kind == "PING" for m in inbox.values())
                    else {}
                )

        rec = MessageRecorder(max_events=1, kinds=["PONG"])
        sim = Simulator(g, {"a": pinger(), "b": ponger()}, recorder=rec)
        sim.run()
        log = EventLog()
        emitted = rec.emit_events(log)
        assert emitted == len(log.by_kind("message_batch"))
        total = 0
        for e in log.by_kind("message_batch"):
            total += sum(e.fields["kinds"].values())
        assert total == rec.total_messages == sim.stats.messages


class TestIORoundTrip:
    def test_metrics_round_trip(self, tmp_path):
        tel = Telemetry.create(
            RunManifest.capture(algorithm="asm", n=12, params={"eps": 0.5})
        )
        obs = MetricsObserver(tel)
        result = asm(
            complete_uniform(12, seed=5), eps=0.5,
            observer=obs, telemetry=tel,
        )
        tel.manifest.finish()
        path = tmp_path / "metrics.json"
        save_metrics(tel.metrics, path, tel.manifest)
        doc = load_metrics(path)
        assert doc["manifest"]["algorithm"] == "asm"
        counters = doc["metrics"]["counters"]
        assert counters["asm.messages.proposes"] == result.messages.proposes
        for phase in ("propose", "accept_reject", "maximal_matching"):
            hist = doc["metrics"]["histograms"][f"asm.phase.{phase}"]
            assert {"p50", "p95", "max"} <= set(hist)

    def test_events_round_trip_cross_checks_trace(self, tmp_path):
        tel = Telemetry.create(RunManifest.capture(algorithm="asm", n=16))
        trace = TraceObserver(tel)
        result = asm(complete_uniform(16, seed=6), eps=0.4, observer=trace)
        path = tmp_path / "events.jsonl"
        save_events(tel.events, path, tel.manifest)
        manifest, records = load_events(path)
        assert manifest["algorithm"] == "asm"
        loaded_rounds = [r for r in records if r["kind"] == "proposal_round"]
        assert len(loaded_rounds) == len(trace.proposal_rounds)
        assert sum(r["proposals"] for r in loaded_rounds) == (
            result.messages.proposes
        )
        assert loaded_rounds[-1]["matching_size"] == len(result.matching)

    def test_events_round_trip_cross_checks_recorder(self, tmp_path):
        tel = Telemetry.create(
            RunManifest.capture(algorithm="congest-asm", n=4)
        )
        rec = MessageRecorder()
        result = run_congest_asm(
            complete_uniform(4, seed=1), eps=0.5,
            inner_iterations=2, outer_iterations=2, mm_iterations=4,
            recorder=rec, telemetry=tel,
        )
        path = tmp_path / "events.jsonl"
        save_events(tel.events, path, tel.manifest)
        _, records = load_events(path)
        batch_total = sum(
            count
            for r in records
            if r["kind"] == "message_batch"
            for count in r["kinds"].values()
        )
        assert batch_total == rec.total_messages == result.stats.messages
        round_total = sum(
            r["messages"] for r in records if r["kind"] == "congest_round"
        )
        assert round_total == result.stats.messages

    def test_load_events_rejects_garbage(self, tmp_path):
        from repro.io import FileFormatError

        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(FileFormatError):
            load_events(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(FileFormatError):
            load_events(empty)
        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text(json.dumps({"format": "repro", "version": 1,
                                     "kind": "metrics"}) + "\n")
        with pytest.raises(FileFormatError):
            load_events(wrong)
