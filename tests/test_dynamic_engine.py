"""Equivalence and contract tests for ``repro.dynamic.engine``.

The two load-bearing properties from the issue:

1. **Stability contract** — after *every* delta the engine's exact
   ε never exceeds ``max(slo.target_eps, ε of a full ASM re-run on a
   frozen snapshot)``: localized repair plus the SLO fallback is never
   worse than re-solving from scratch would certify.
2. **Index equivalence** — after every delta the dynamic index agrees
   exactly with a fresh index on the frozen market, and the engine's
   ``MutableMatching`` mirror agrees with the index partner state.

Plus: bit-for-bit determinism of the outcome stream, the fallback
path, and parameter validation.
"""

from __future__ import annotations

import pytest

from repro.analysis.stability import count_blocking_pairs
from repro.core.asm import asm
from repro.dynamic import (
    AddEdge,
    ArriveMan,
    DeltaOutcome,
    DepartWoman,
    DynamicMatchingEngine,
    RemoveEdge,
    SwapManPrefs,
    delta_from_dict,
    delta_kind,
    delta_to_dict,
)
from repro.dynamic.deltas import (
    ArriveWoman,
    DepartMan,
    SwapWomanPrefs,
)
from repro.errors import InvalidParameterError
from repro.trace.slo import StabilitySLO
from repro.workloads import ChurnConfig, churn_stream
from repro.workloads.generators import (
    bounded_degree,
    complete_uniform,
    gnp_incomplete,
)

ALL_DELTAS = [
    AddEdge(man=1, woman=2, man_pos=0, woman_pos=1),
    RemoveEdge(man=0, woman=3),
    SwapManPrefs(man=2, pos=1),
    SwapWomanPrefs(woman=1, pos=0),
    ArriveMan(prefs=(0, 2), positions=(1, 0)),
    ArriveWoman(prefs=(1,), positions=(2,)),
    DepartMan(man=3),
    DepartWoman(woman=0),
]


class TestDeltaSerialization:
    @pytest.mark.parametrize("delta", ALL_DELTAS, ids=delta_kind)
    def test_round_trip(self, delta):
        doc = delta_to_dict(delta)
        assert doc["kind"] == delta_kind(delta)
        assert delta_from_dict(doc) == delta

    def test_json_safe(self):
        import json

        for delta in ALL_DELTAS:
            rebuilt = delta_from_dict(
                json.loads(json.dumps(delta_to_dict(delta)))
            )
            assert rebuilt == delta

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            delta_from_dict({"kind": "nope"})


class TestValidation:
    def test_bad_eps(self):
        with pytest.raises(InvalidParameterError):
            DynamicMatchingEngine(complete_uniform(3, seed=0), 0.0)

    def test_bad_radius(self):
        with pytest.raises(InvalidParameterError):
            DynamicMatchingEngine(
                complete_uniform(3, seed=0), 0.5, repair_radius=-1
            )

    def test_bad_passes(self):
        with pytest.raises(InvalidParameterError):
            DynamicMatchingEngine(
                complete_uniform(3, seed=0), 0.5, repair_passes=0
            )

    def test_unknown_delta_type(self):
        engine = DynamicMatchingEngine(complete_uniform(3, seed=0), 0.5)
        with pytest.raises(InvalidParameterError):
            engine.apply("not a delta")


class TestWarmStart:
    def test_warm_start_meets_target(self):
        engine = DynamicMatchingEngine(complete_uniform(8, seed=1), 0.25)
        assert engine.current_eps() <= 0.25
        engine.index.verify()

    def test_cold_start_is_unstable(self):
        engine = DynamicMatchingEngine(
            complete_uniform(8, seed=1), 0.25, warm_start=False
        )
        assert engine.current_eps() == 1.0
        assert not list(engine.current_matching().pairs())


def _drive(prefs, deltas, *, target_eps, **kwargs):
    """Run a stream; after every delta check the equivalence contract."""
    engine = DynamicMatchingEngine(
        prefs,
        target_eps,
        slo=StabilitySLO(target_eps=target_eps, deadline_rounds=0),
        **kwargs,
    )
    for delta in deltas:
        outcome = engine.apply(delta)
        # 1. index exactness (vs fresh index + full-scan oracle)
        engine.index.verify()
        # 2. matching mirror agrees with the index partner state
        assert (
            sorted(engine.matching.freeze().pairs())
            == sorted(engine.current_matching().pairs())
        )
        # 3. stability contract: never worse than what a full re-run
        #    would certify
        frozen = engine.market.freeze()
        if frozen.num_edges:
            full = asm(frozen, target_eps)
            full_eps = (
                count_blocking_pairs(frozen, full.matching)
                / frozen.num_edges
            )
            assert outcome.eps_after <= max(target_eps, full_eps) + 1e-12
        assert outcome.eps_after == engine.trajectory[-1][1]
    return engine


class TestEquivalenceUnderChurn:
    @pytest.mark.parametrize("seed", range(3))
    def test_gnp_churn(self, seed):
        prefs = gnp_incomplete(10, 0.5, seed=seed)
        deltas = churn_stream(prefs, ChurnConfig(steps=25), seed)
        engine = _drive(prefs, deltas, target_eps=0.25)
        assert engine.deltas_applied == len(deltas)
        assert engine.worst_eps() <= 0.25 + 1e-12

    def test_bounded_degree_churn(self):
        prefs = bounded_degree(12, 4, seed=7)
        deltas = churn_stream(prefs, ChurnConfig(steps=30), 7)
        _drive(prefs, deltas, target_eps=0.5)

    def test_zero_radius_leans_on_fallback(self):
        # repair disabled: the SLO net alone must still hold the bound
        prefs = complete_uniform(8, seed=3)
        deltas = churn_stream(prefs, ChurnConfig(steps=20), 3)
        engine = _drive(
            prefs, deltas, target_eps=0.1, repair_radius=0
        )
        assert engine.worst_eps() <= 0.1 + 1e-12

    def test_fallback_fires_and_counts(self):
        prefs = complete_uniform(10, seed=2)
        deltas = churn_stream(prefs, ChurnConfig(steps=40), 2)
        engine = DynamicMatchingEngine(
            prefs,
            0.5,
            repair_radius=0,
            slo=StabilitySLO(target_eps=0.01, deadline_rounds=0),
        )
        outcomes = engine.apply_stream(deltas)
        assert engine.fallbacks == sum(1 for o in outcomes if o.fallback)
        assert engine.fallbacks > 0
        assert all(o.eps_after <= 0.01 + 1e-12 for o in outcomes)

    def test_auto_repair_off_is_pure_replay(self):
        # the bench control arm: structural updates only
        prefs = complete_uniform(8, seed=5)
        deltas = churn_stream(prefs, ChurnConfig(steps=15), 5)
        engine = DynamicMatchingEngine(
            prefs, 0.5, warm_start=False, auto_repair=False
        )
        engine.apply_stream(deltas)
        assert engine.fallbacks == 0
        assert engine.marriages == 0
        engine.index.verify()


class TestDeterminism:
    def test_outcome_stream_is_replayable(self):
        prefs = gnp_incomplete(9, 0.6, seed=11)
        deltas = churn_stream(prefs, ChurnConfig(steps=30), 11)

        def run():
            engine = DynamicMatchingEngine(prefs, 0.25)
            outcomes = engine.apply_stream(deltas)
            return outcomes, sorted(engine.current_matching().pairs())

        first, second = run(), run()
        assert first == second
        assert all(isinstance(o, DeltaOutcome) for o in first[0])

    def test_churn_stream_is_pure(self):
        prefs = complete_uniform(6, seed=0)
        config = ChurnConfig(steps=20)
        assert churn_stream(prefs, config, 9) == churn_stream(
            prefs, config, 9
        )
        assert churn_stream(prefs, config, 9) != churn_stream(
            prefs, config, 10
        )


class TestReport:
    def test_report_shape(self):
        prefs = complete_uniform(6, seed=4)
        engine = DynamicMatchingEngine(prefs, 0.5)
        engine.apply(RemoveEdge(man=0, woman=engine.index.man_partner(0)))
        report = engine.report()
        assert report["deltas_applied"] == 1
        assert report["target_eps"] == 0.5
        assert report["num_edges"] == engine.market.num_edges
        assert len(report["trajectory"]) == 1
        import json

        json.dumps(report)  # JSON-safe
