"""Unit tests for ``repro.parallel``: specs, seeds, pool, telemetry.

The equivalence suite (``test_parallel_equivalence.py``) checks that
real sweeps are bit-identical across worker counts; this file checks
the machinery itself — seed-derivation stability, chunk layout,
spec-order merging, failure surfacing, and merged telemetry.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.errors import InvalidParameterError
from repro.obs.telemetry import Telemetry
from repro.parallel import (
    DEFAULT_MAX_CHUNKS,
    TrialExecutionError,
    TrialPool,
    TrialSpec,
    derive_seed,
    execute_trial,
    resolve_runner,
)

SELFTEST = "repro.parallel.runners:selftest_trial"


def _specs(count, **params):
    return [
        TrialSpec.make(SELFTEST, algorithm="selftest", n=i, seed=i, **params)
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# derive_seed
# ----------------------------------------------------------------------


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "e3", 32, 0.25) == derive_seed(0, "e3", 32, 0.25)

    def test_sensitive_to_every_component(self):
        base = derive_seed(0, "e3", 32, 0.25)
        assert derive_seed(1, "e3", 32, 0.25) != base
        assert derive_seed(0, "e4", 32, 0.25) != base
        assert derive_seed(0, "e3", 33, 0.25) != base
        assert derive_seed(0, "e3", 32, 0.5) != base

    def test_fits_in_63_bits_and_nonnegative(self):
        for i in range(50):
            seed = derive_seed(i, "x", i * 3)
            assert 0 <= seed < 2 ** 63

    def test_stable_across_interpreter_processes(self):
        """The guarantee hash() cannot give: a fresh interpreter (fresh
        PYTHONHASHSEED) derives the identical seed."""
        code = (
            "from repro.parallel import derive_seed;"
            "print(derive_seed(7, 'e1', 128, 0.25, {'a': 1, 'b': [2, 3]}))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert int(out) == derive_seed(
            7, "e1", 128, 0.25, {"a": 1, "b": [2, 3]}
        )

    def test_dict_component_is_order_insensitive(self):
        assert derive_seed(0, {"a": 1, "b": 2}) == derive_seed(
            0, {"b": 2, "a": 1}
        )

    def test_rejects_unstable_components(self):
        with pytest.raises(InvalidParameterError):
            derive_seed(0, object())


# ----------------------------------------------------------------------
# TrialSpec
# ----------------------------------------------------------------------


class TestTrialSpec:
    def test_make_canonicalizes_param_order(self):
        a = TrialSpec.make(SELFTEST, n=4, b=2, a=1)
        b = TrialSpec.make(SELFTEST, n=4, a=1, b=2)
        assert a == b
        assert a.params == (("a", 1), ("b", 2))

    def test_param_lookup_and_default(self):
        spec = TrialSpec.make(SELFTEST, n=4, budget=9)
        assert spec.param("budget") == 9
        assert spec.param("missing") is None
        assert spec.param("missing", 3) == 3
        assert spec.params_dict == {"budget": 9}

    def test_specs_are_hashable_and_frozen(self):
        spec = TrialSpec.make(SELFTEST, n=4)
        assert spec in {spec}
        with pytest.raises(Exception):
            spec.n = 5  # type: ignore[misc]

    def test_identity_excludes_seed(self):
        a = TrialSpec.make(SELFTEST, n=4, seed=0)
        b = TrialSpec.make(SELFTEST, n=4, seed=99)
        assert a.identity() == b.identity()
        # ... so the derived seed depends only on root seed + coords.
        assert a.derived_seed(5) == b.derived_seed(5)
        assert a.derived_seed(5) != a.derived_seed(6)

    def test_with_seed(self):
        spec = TrialSpec.make(SELFTEST, n=4)
        assert spec.with_seed(11).seed == 11
        assert spec.seed is None

    def test_describe_names_coordinates(self):
        text = TrialSpec.make(
            SELFTEST, algorithm="asm", workload="complete", n=4, seed=2
        ).describe()
        assert "algorithm=asm" in text
        assert "workload=complete" in text
        assert "n=4" in text


# ----------------------------------------------------------------------
# resolve_runner
# ----------------------------------------------------------------------


class TestResolveRunner:
    def test_resolves_and_executes(self):
        fn = resolve_runner(SELFTEST)
        spec = TrialSpec.make(SELFTEST, n=3, seed=3)
        assert fn(spec) == execute_trial(spec)

    @pytest.mark.parametrize(
        "reference",
        [
            "no-colon",
            "repro.parallel.runners:",
            ":selftest_trial",
            "os:system",
            "subprocess:run",
            "reprox.evil:fn",
        ],
    )
    def test_rejects_malformed_or_foreign_references(self, reference):
        with pytest.raises(InvalidParameterError):
            resolve_runner(reference)

    def test_rejects_non_callable_target(self):
        with pytest.raises(InvalidParameterError):
            resolve_runner("repro.parallel.pool:DEFAULT_MAX_CHUNKS")


# ----------------------------------------------------------------------
# Chunk layout
# ----------------------------------------------------------------------


class TestChunkLayout:
    def test_covers_every_index_exactly_once(self):
        for count in (0, 1, 5, 16, 17, 100):
            layout = TrialPool(workers=1).chunk_layout(count)
            indices = [
                start + i for start, size in layout for i in range(size)
            ]
            assert indices == list(range(count))

    def test_default_fanout_is_bounded(self):
        layout = TrialPool(workers=1).chunk_layout(1000)
        assert len(layout) <= DEFAULT_MAX_CHUNKS

    def test_independent_of_worker_count(self):
        for count in (7, 32, 100):
            layouts = {
                tuple(TrialPool(workers=w).chunk_layout(count))
                for w in (1, 2, 7)
            }
            assert len(layouts) == 1

    def test_explicit_chunk_size(self):
        assert TrialPool(workers=1, chunk_size=2).chunk_layout(5) == [
            (0, 2),
            (2, 2),
            (4, 1),
        ]

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            TrialPool(workers=0)
        with pytest.raises(InvalidParameterError):
            TrialPool(workers=1, chunk_size=0)


# ----------------------------------------------------------------------
# Pool execution
# ----------------------------------------------------------------------


class TestTrialPool:
    def test_serial_results_in_spec_order(self):
        results = TrialPool(workers=1).run(_specs(9))
        assert [r["n"] for r in results] == list(range(9))

    def test_empty_run(self):
        assert TrialPool(workers=1).run([]) == []
        assert TrialPool(workers=3).run([]) == []

    def test_parallel_matches_serial_exactly(self):
        specs = _specs(11)
        serial = TrialPool(workers=1).run(specs)
        for workers in (2, 3):
            assert TrialPool(workers=workers, chunk_size=2).run(specs) == serial

    def test_failure_surfaces_spec_identity(self):
        specs = _specs(6)
        specs[3] = TrialSpec.make(SELFTEST, n=3, seed=3, fail=True)
        with pytest.raises(TrialExecutionError) as err:
            TrialPool(workers=1, chunk_size=2).run(specs)
        assert "trial 3 failed" in str(err.value)
        assert "injected failure" in str(err.value)

    def test_parallel_failure_reports_lowest_index(self):
        specs = _specs(8)
        # Failures in two different chunks; the lowest index wins, as
        # the serial fail-fast loop would have reported.
        specs[2] = TrialSpec.make(SELFTEST, n=2, seed=2, fail=True)
        specs[6] = TrialSpec.make(SELFTEST, n=6, seed=6, fail=True)
        with pytest.raises(TrialExecutionError) as err:
            TrialPool(workers=2, chunk_size=2).run(specs)
        assert "trial 2 failed" in str(err.value)

    def test_failure_carries_worker_traceback(self):
        specs = _specs(4)
        specs[1] = TrialSpec.make(SELFTEST, n=1, seed=1, fail=True)
        with pytest.raises(TrialExecutionError) as err:
            TrialPool(workers=2, chunk_size=1).run(specs)
        assert "worker traceback" in str(err.value)
        assert "ValueError" in str(err.value)

    def test_dead_worker_becomes_trial_execution_error(self):
        specs = _specs(4)
        specs[2] = TrialSpec.make(SELFTEST, n=2, seed=2, hard_exit=True)
        with pytest.raises(TrialExecutionError) as err:
            TrialPool(workers=2, chunk_size=1).run(specs)
        assert "worker process died" in str(err.value)

    def test_last_stats_shape(self):
        pool = TrialPool(workers=2, chunk_size=3)
        pool.run(_specs(7))
        stats = pool.last_stats
        assert stats["workers"] == 2
        assert stats["chunks"] == 3
        assert stats["trials"] == 7
        assert sum(t["trials"] for t in stats["worker_timings"]) == 7


# ----------------------------------------------------------------------
# Merged telemetry
# ----------------------------------------------------------------------


class TestPoolTelemetry:
    def _run(self, workers):
        telemetry = Telemetry.create()
        pool = TrialPool(workers=workers, chunk_size=2, telemetry=telemetry)
        pool.run(_specs(6))
        return telemetry

    def test_counters_worker_count_invariant(self):
        serial = self._run(1).metrics
        parallel = self._run(2).metrics
        assert serial.counters == parallel.counters
        assert serial.counters["parallel.trials_completed"] == 6
        assert serial.counters["parallel.chunks"] == 3

    def test_chunk_events_worker_count_invariant(self):
        def shape(telemetry):
            return [
                (e.kind, e.fields["start"], e.fields["trials"])
                for e in telemetry.events.events
            ]

        assert shape(self._run(1)) == shape(self._run(2))
        assert shape(self._run(1)) == [
            ("trial_chunk", 0, 2),
            ("trial_chunk", 2, 2),
            ("trial_chunk", 4, 2),
        ]

    def test_trial_timings_collected(self):
        telemetry = self._run(2)
        assert len(telemetry.metrics.histograms["parallel.trial_seconds"]) == 6

    def test_manifest_records_parallelism(self):
        from repro.obs.manifest import RunManifest

        manifest = RunManifest.capture(algorithm="selftest")
        telemetry = Telemetry.create(manifest)
        TrialPool(workers=2, chunk_size=2, telemetry=telemetry).run(_specs(4))
        recorded = manifest.extra["parallel"]
        assert recorded["workers"] == 2
        assert recorded["chunk_size"] == 2
        assert sum(t["trials"] for t in recorded["worker_timings"]) == 4

    def test_disabled_telemetry_is_a_noop(self):
        telemetry = Telemetry.disabled()
        TrialPool(workers=1, telemetry=telemetry).run(_specs(3))
        assert telemetry.metrics.counters == {}
        assert len(telemetry.events) == 0
