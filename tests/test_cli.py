"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "asm"
        assert args.workload == "complete"
        assert args.n == 128

    def test_invalid_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "workloads:" in out

    @pytest.mark.parametrize(
        "algorithm",
        ["asm", "rand-asm", "almost-regular-asm", "gale-shapley",
         "truncated-gs"],
    )
    def test_run_each_algorithm(self, algorithm, capsys):
        code = main(
            [
                "run",
                "--algorithm",
                algorithm,
                "--workload",
                "complete",
                "--n",
                "12",
                "--eps",
                "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert algorithm.split("@")[0] in out

    @pytest.mark.parametrize(
        "workload",
        ["complete", "gnp", "bounded", "regular", "almost_regular",
         "master_list", "euclidean", "zipf", "clustered",
         "adversarial_gs"],
    )
    def test_run_each_workload(self, workload, capsys):
        code = main(
            ["run", "--workload", workload, "--n", "12", "--eps", "0.5"]
        )
        assert code == 0
        assert workload in capsys.readouterr().out

    def test_experiment_quick(self, capsys):
        code = main(["experiment", "e8", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[E8]" in out and "PASS" in out

    def test_experiment_unknown_exits_2(self, capsys):
        assert main(["experiment", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'nope'" in err
        # The error must teach the valid vocabulary.
        for name in ("e1", "e12", "a5"):
            assert name in err

    def test_experiment_json(self, capsys):
        import json

        assert main(["experiment", "e8", "--quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "E8"
        assert payload["passed"] is True
        assert payload["rows"]

    def test_experiment_workers_matches_serial(self, capsys):
        assert main(["experiment", "e8", "--quick"]) == 0
        serial = capsys.readouterr().out
        assert main(["experiment", "e8", "--quick", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_workers_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "e8", "--workers", "0"])

    def test_experiment_seed_override(self, capsys):
        assert main(["experiment", "e8", "--quick", "--seed", "3"]) == 0

    @pytest.mark.parametrize(
        "protocol",
        ["asm", "rand-asm", "almost-regular-asm", "gale-shapley"],
    )
    def test_congest_each_protocol(self, protocol, capsys):
        code = main(
            [
                "congest",
                "--protocol",
                protocol,
                "--n",
                "5",
                "--inner",
                "3",
                "--outer",
                "2",
                "--mm-iterations",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert protocol in out
        assert "rounds" in out

    def test_run_json_output(self, capsys):
        assert main(
            ["run", "--n", "10", "--eps", "0.5", "--json"]
        ) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["eps"] == 0.5
        assert payload["n_men"] == 10
        assert "instability" in payload
        assert payload["instability"] <= 0.5

    def test_run_metrics_and_events_export(self, tmp_path, capsys):
        from repro.io import load_events, load_metrics

        metrics_path = tmp_path / "m.json"
        events_path = tmp_path / "e.jsonl"
        code = main(
            [
                "run", "--algorithm", "asm", "--workload", "complete",
                "--n", "12", "--eps", "0.5", "--seed", "3",
                "--metrics-out", str(metrics_path),
                "--events-out", str(events_path),
            ]
        )
        assert code == 0
        doc = load_metrics(metrics_path)
        manifest = doc["manifest"]
        assert manifest["algorithm"] == "asm"
        assert manifest["params"]["eps"] == 0.5
        assert manifest["workload"] == "complete"
        assert manifest["seed"] == 3
        assert manifest["n"] == 12
        assert manifest["finished_at"] is not None
        hists = doc["metrics"]["histograms"]
        for phase in ("propose", "accept_reject", "maximal_matching"):
            assert {"p50", "p95", "max"} <= set(hists[f"asm.phase.{phase}"])
        assert doc["metrics"]["counters"]["asm.proposal_rounds"] > 0
        assert doc["metrics"]["gauges"]["run.wall_seconds"] > 0
        ev_manifest, records = load_events(events_path)
        assert ev_manifest["algorithm"] == "asm"
        kinds = {r["kind"] for r in records}
        assert "proposal_round" in kinds
        # the export notice goes to stderr, keeping stdout clean
        captured = capsys.readouterr()
        assert "wrote metrics to" in captured.err
        assert "events to" in captured.err
        assert "wrote metrics to" not in captured.out

    def test_run_json_with_metrics_out_keeps_stdout_json(
        self, tmp_path, capsys
    ):
        import json

        code = main(
            [
                "run", "--n", "10", "--eps", "0.5", "--json",
                "--metrics-out", str(tmp_path / "m.json"),
            ]
        )
        assert code == 0
        json.loads(capsys.readouterr().out)  # stdout stays parseable

    def test_run_gs_metrics_export(self, tmp_path):
        from repro.io import load_metrics

        metrics_path = tmp_path / "m.json"
        assert main(
            [
                "run", "--algorithm", "gale-shapley", "--n", "10",
                "--metrics-out", str(metrics_path),
            ]
        ) == 0
        doc = load_metrics(metrics_path)
        assert doc["manifest"]["algorithm"] == "gale-shapley"
        assert doc["metrics"]["counters"]["gs.proposals"] > 0
        assert doc["metrics"]["gauges"]["gs.matching_size"] == 10

    def test_congest_metrics_and_events_export(self, tmp_path):
        from repro.io import load_events, load_metrics

        metrics_path = tmp_path / "m.json"
        events_path = tmp_path / "e.jsonl"
        code = main(
            [
                "congest", "--protocol", "asm", "--n", "5",
                "--inner", "3", "--outer", "2", "--mm-iterations", "8",
                "--metrics-out", str(metrics_path),
                "--events-out", str(events_path),
            ]
        )
        assert code == 0
        doc = load_metrics(metrics_path)
        assert doc["manifest"]["algorithm"] == "congest-asm"
        counters = doc["metrics"]["counters"]
        assert counters["congest.rounds"] > 0
        assert counters["congest.messages"] > 0
        assert "congest.round_seconds" in doc["metrics"]["histograms"]
        manifest, records = load_events(events_path)
        assert manifest["algorithm"] == "congest-asm"
        kinds = {r["kind"] for r in records}
        assert {"congest_round", "message_batch"} <= kinds
        round_total = sum(
            r["messages"] for r in records if r["kind"] == "congest_round"
        )
        assert round_total == counters["congest.messages"]

    def test_report_quick(self, capsys):
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "overall: PASS" in out
        # every registered experiment appears
        from repro.analysis.experiments import ALL_EXPERIMENTS

        for name in ALL_EXPERIMENTS:
            assert f"[{name.upper()}]" in out

    def test_report_quick_markdown(self, capsys):
        assert main(["report", "--quick", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "## E1 —" in out
        assert "**Overall: PASS**" in out
        assert "| workload |" in out

    def test_report_only_subset_json(self, capsys):
        import json

        assert main(
            ["report", "--quick", "--json", "--only", "e8,a3"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        ids = [doc["experiment_id"] for doc in payload["experiments"]]
        # Registry order, independent of --only order.
        assert ids == ["E8", "A3"]
        assert payload["overall_passed"] is True

    def test_report_only_unknown_exits_2(self, capsys):
        assert main(["report", "--quick", "--only", "zz"]) == 2
        assert "unknown experiment ids zz" in capsys.readouterr().err
