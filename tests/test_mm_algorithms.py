"""Tests for the maximal-matching algorithms (greedy, deterministic,
Israeli–Itai, AMM) — correctness, guarantees, round accounting."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.graphs import Graph, bipartite_graph_from_edges
from repro.mm.deterministic import (
    ROUNDS_PER_POINTER_ROUND,
    deterministic_maximal_matching,
)
from repro.mm.greedy import greedy_maximal_matching
from repro.mm.israeli_itai import (
    DEFAULT_DECAY_C,
    ROUNDS_PER_MATCHING_ROUND,
    amm,
    israeli_itai_maximal_matching,
    matching_round,
    rounds_for_amm,
    rounds_for_maximality,
)
from repro.mm.oracles import (
    amm_oracle,
    deterministic_oracle,
    greedy_oracle,
    israeli_itai_oracle,
    truncated_israeli_itai_oracle,
)
from repro.mm.result import MMResult, partner_map_from_pairs
from repro.mm.verify import (
    is_maximal_matching,
    is_valid_matching,
    violating_vertices,
)
from repro.workloads.generators import gnp_incomplete


def random_graph(n: int, p: float, seed: int) -> Graph:
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_node(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


class TestResultType:
    def test_partner_map_from_pairs(self):
        partner = partner_map_from_pairs([(1, 2), (3, 4)])
        assert partner[1] == 2 and partner[2] == 1

    def test_partner_map_duplicate_rejected(self):
        with pytest.raises(ValueError):
            partner_map_from_pairs([(1, 2), (2, 3)])

    def test_pairs_unique_and_size(self):
        result = MMResult(partner={1: 2, 2: 1, 3: 4, 4: 3}, rounds=0)
        assert result.size == 2
        assert len(result.pairs()) == 2


class TestGreedy:
    def test_maximal_on_random_graphs(self):
        for seed in range(8):
            g = random_graph(20, 0.2, seed)
            result = greedy_maximal_matching(g)
            assert is_maximal_matching(g, result.partner)

    def test_empty_graph(self):
        result = greedy_maximal_matching(Graph())
        assert result.size == 0

    def test_deterministic(self):
        g = random_graph(15, 0.3, 1)
        assert (
            greedy_maximal_matching(g).partner
            == greedy_maximal_matching(g).partner
        )


class TestDeterministic:
    def test_maximal_on_random_graphs(self):
        for seed in range(8):
            g = random_graph(20, 0.2, seed)
            result = deterministic_maximal_matching(g)
            assert is_maximal_matching(g, result.partner)

    def test_rounds_accounting(self):
        g = random_graph(20, 0.3, 0)
        result = deterministic_maximal_matching(g)
        iterations = len(result.per_iteration_active)
        assert result.rounds == iterations * ROUNDS_PER_POINTER_ROUND

    def test_truncation_yields_valid_matching(self):
        g = random_graph(30, 0.15, 2)
        result = deterministic_maximal_matching(g, max_iterations=1)
        assert is_valid_matching(g, result.partner)

    def test_input_not_modified(self):
        g = random_graph(10, 0.4, 3)
        before = g.num_edges
        deterministic_maximal_matching(g)
        assert g.num_edges == before

    def test_star_graph_single_edge(self):
        g = Graph()
        for leaf in range(1, 6):
            g.add_edge(0, leaf)
        result = deterministic_maximal_matching(g)
        assert result.size == 1
        assert is_maximal_matching(g, result.partner)


class TestIsraeliItai:
    def test_matching_round_removes_vertices(self):
        g = random_graph(30, 0.3, 0)
        matched, residual = matching_round(g, random.Random(0))
        assert residual.num_nodes < g.num_nodes
        # matched vertices are gone from the residual graph
        for u, v in matched:
            assert not residual.has_node(u)
            assert not residual.has_node(v)

    def test_matching_round_preserves_input(self):
        g = random_graph(10, 0.5, 1)
        before = g.num_edges
        matching_round(g, random.Random(0))
        assert g.num_edges == before

    def test_maximal_on_random_graphs(self):
        for seed in range(8):
            g = random_graph(20, 0.2, seed)
            result = israeli_itai_maximal_matching(g, random.Random(seed))
            assert is_maximal_matching(g, result.partner)

    def test_maximal_on_bipartite(self):
        prefs = gnp_incomplete(15, 0.3, seed=4)
        g = bipartite_graph_from_edges(prefs.iter_edges(), 15, 15)
        result = israeli_itai_maximal_matching(g, random.Random(1))
        assert is_maximal_matching(g, result.partner)

    def test_rounds_accounting(self):
        g = random_graph(25, 0.3, 2)
        result = israeli_itai_maximal_matching(g, random.Random(5))
        assert result.rounds == len(result.per_iteration_active) * (
            ROUNDS_PER_MATCHING_ROUND
        )

    def test_seeded_reproducibility(self):
        g = random_graph(25, 0.3, 2)
        a = israeli_itai_maximal_matching(g, random.Random(9)).partner
        b = israeli_itai_maximal_matching(g, random.Random(9)).partner
        assert a == b

    def test_truncated_is_valid(self):
        g = random_graph(40, 0.2, 3)
        result = israeli_itai_maximal_matching(
            g, random.Random(0), max_iterations=1
        )
        assert is_valid_matching(g, result.partner)

    def test_geometric_decay_lemma8(self):
        """Lemma 8: active vertex count shrinks geometrically on average."""
        decays = []
        for seed in range(10):
            g = random_graph(120, 0.05, seed)
            result = israeli_itai_maximal_matching(g, random.Random(seed))
            active0 = g.num_nodes - len(g.isolated_nodes())
            counts = [active0] + result.per_iteration_active
            # one-step decay averaged over the first iteration
            decays.append(counts[1] / counts[0])
        assert sum(decays) / len(decays) < 0.9


class TestBudgets:
    def test_rounds_for_maximality_monotone_in_n(self):
        r1 = rounds_for_maximality(100, 0.1)
        r2 = rounds_for_maximality(10_000, 0.1)
        assert r2 > r1

    def test_rounds_for_maximality_small_n(self):
        assert rounds_for_maximality(1, 0.1) == 1

    def test_rounds_for_amm_independent_of_n(self):
        # The AMM budget depends only on (eta, delta).
        assert rounds_for_amm(0.1, 0.1) == rounds_for_amm(0.1, 0.1)
        assert rounds_for_amm(0.01, 0.01) > rounds_for_amm(0.1, 0.1)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            rounds_for_maximality(10, 0.0)
        with pytest.raises(InvalidParameterError):
            rounds_for_maximality(10, 1.0)
        with pytest.raises(InvalidParameterError):
            rounds_for_maximality(10, 0.5, decay_c=1.5)
        with pytest.raises(InvalidParameterError):
            rounds_for_amm(0.0, 0.5)
        with pytest.raises(InvalidParameterError):
            rounds_for_amm(0.5, 0.0)
        with pytest.raises(InvalidParameterError):
            rounds_for_amm(0.5, 0.5, decay_c=0.0)

    def test_corollary1_truncation_usually_maximal(self):
        """Corollary 1: the budget achieves maximality w.h.p."""
        eta = 0.2
        failures = 0
        trials = 20
        for seed in range(trials):
            g = random_graph(40, 0.15, seed)
            budget = rounds_for_maximality(g.num_nodes, eta)
            result = israeli_itai_maximal_matching(
                g, random.Random(100 + seed), max_iterations=budget
            )
            if not is_maximal_matching(g, result.partner):
                failures += 1
        assert failures / trials <= eta

    def test_corollary2_amm_guarantee(self):
        """Corollary 2: AMM leaves <= eta|V| violators w.p. >= 1-delta."""
        eta, delta = 0.1, 0.2
        failures = 0
        trials = 20
        for seed in range(trials):
            g = random_graph(60, 0.1, seed)
            result = amm(g, eta, delta, rng=random.Random(200 + seed))
            frac = len(violating_vertices(g, result.partner)) / g.num_nodes
            if frac > eta:
                failures += 1
        assert failures / trials <= delta

    def test_default_decay_constant_sane(self):
        assert 0 < DEFAULT_DECAY_C < 1


class TestOracles:
    def test_all_exact_oracles_maximal(self):
        g = random_graph(25, 0.2, 7)
        for factory in (
            deterministic_oracle(),
            greedy_oracle(),
            israeli_itai_oracle(3),
        ):
            result = factory(g)
            assert is_maximal_matching(g, result.partner)

    def test_truncated_oracle_valid(self):
        g = random_graph(25, 0.2, 7)
        result = truncated_israeli_itai_oracle(2, seed=1)(g)
        assert is_valid_matching(g, result.partner)

    def test_amm_oracle_budgeted(self):
        g = random_graph(25, 0.2, 7)
        oracle = amm_oracle(0.1, 0.1, seed=1)
        result = oracle(g)
        assert is_valid_matching(g, result.partner)
        assert len(result.per_iteration_active) <= rounds_for_amm(0.1, 0.1)

    def test_oracle_statefulness(self):
        """A randomized oracle's rng persists across calls (different
        draws per call), but two same-seed oracles agree call-by-call."""
        g = random_graph(25, 0.2, 7)
        o1 = israeli_itai_oracle(5)
        o2 = israeli_itai_oracle(5)
        assert o1(g).partner == o2(g).partner
        assert o1(g).partner == o2(g).partner


@settings(max_examples=30, deadline=None)
@given(n=st.integers(0, 18), p=st.floats(0, 0.6), seed=st.integers(0, 100))
def test_all_algorithms_maximal_property(n, p, seed):
    """Greedy, deterministic and Israeli-Itai are all maximal on
    arbitrary random graphs."""
    g = random_graph(n, p, seed)
    for result in (
        greedy_maximal_matching(g),
        deterministic_maximal_matching(g),
        israeli_itai_maximal_matching(g, random.Random(seed)),
    ):
        assert is_maximal_matching(g, result.partner)
