"""Tests for the ASM engine (Algorithms 1–3, Lemmas 1–7, Theorems 3–4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stability import (
    count_blocking_pairs,
    find_eps_blocking_pairs,
    instability,
)
from repro.core.asm import (
    ASMEngine,
    ASMObserver,
    asm,
    params_for_eps,
)
from repro.core.preferences import PreferenceProfile
from repro.core.rounds import (
    CONSTANT_ROUNDS_PER_PROPOSAL_ROUND,
    ActualCost,
    FixedCost,
    HKPCost,
)
from repro.errors import InvalidParameterError
from repro.mm.oracles import greedy_oracle, israeli_itai_oracle
from repro.workloads.generators import (
    adversarial_gale_shapley,
    bounded_degree,
    complete_uniform,
    euclidean,
    gnp_incomplete,
    master_list,
)


class TestParams:
    def test_paper_parameters(self):
        k, delta = params_for_eps(0.2)
        assert k == 40
        assert delta == 0.025

    def test_eps_one(self):
        k, delta = params_for_eps(1.0)
        assert k == 8 and delta == 0.125

    def test_invalid_eps(self):
        with pytest.raises(InvalidParameterError):
            params_for_eps(0.0)
        with pytest.raises(InvalidParameterError):
            params_for_eps(-1.0)

    def test_engine_validates_overrides(self):
        prefs = complete_uniform(4, seed=0)
        with pytest.raises(InvalidParameterError):
            ASMEngine(prefs, 0.5, k=0)
        with pytest.raises(InvalidParameterError):
            ASMEngine(prefs, 0.5, delta=0.0)


class TestTheorem3:
    """The approximation guarantee on every workload family."""

    @pytest.mark.parametrize("eps", [0.1, 0.25, 0.5, 1.0])
    def test_complete(self, eps):
        for seed in range(3):
            prefs = complete_uniform(24, seed=seed)
            run = asm(prefs, eps)
            assert instability(prefs, run.matching) <= eps

    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: gnp_incomplete(20, 0.3, seed=s),
            lambda s: bounded_degree(20, 5, seed=s),
            lambda s: master_list(16, 0.1, seed=s),
            lambda s: euclidean(20, radius=0.5, seed=s),
            lambda s: adversarial_gale_shapley(16),
        ],
    )
    def test_other_workloads(self, factory):
        eps = 0.3
        for seed in range(3):
            prefs = factory(seed)
            run = asm(prefs, eps)
            run.matching.validate_against(prefs)
            assert instability(prefs, run.matching) <= eps

    def test_matching_valid_against_prefs(self):
        prefs = gnp_incomplete(18, 0.4, seed=11)
        run = asm(prefs, 0.25)
        run.matching.validate_against(prefs)

    def test_result_metadata(self):
        prefs = complete_uniform(10, seed=0)
        run = asm(prefs, 0.5)
        assert run.eps == 0.5
        assert run.k == 16
        assert run.n_men == run.n_women == 10
        assert run.num_edges == 100
        assert run.good_men | run.bad_men == frozenset(range(10))
        assert not run.removed_men
        assert 0.0 <= run.good_fraction <= 1.0


class TestGoodBadClassification:
    def test_good_iff_matched_or_exhausted(self):
        prefs = gnp_incomplete(16, 0.3, seed=5)
        engine = ASMEngine(prefs, 0.4)
        run = engine.run()
        for m in range(16):
            matched = run.matching.partner_of_man(m) is not None
            exhausted = engine.men_q[m].remaining == 0
            assert (m in run.good_men) == (matched or exhausted)

    def test_lemma3_good_men_not_in_2k_blocking_pairs(self):
        for seed in range(4):
            prefs = complete_uniform(20, seed=seed)
            run = asm(prefs, 0.4)
            pairs = find_eps_blocking_pairs(prefs, run.matching, 2.0 / run.k)
            assert all(m not in run.good_men for m, _ in pairs)

    def test_lemma6_bad_fraction_bounded(self):
        prefs = complete_uniform(32, seed=3)
        run = asm(prefs, 0.5)
        for it in run.outer_iterations:
            assert it.lemma6_bad_fraction <= run.delta + 1e-12

    def test_empty_list_men_are_good(self):
        prefs = PreferenceProfile([[], [0]], [[1]])
        run = asm(prefs, 0.5)
        assert 0 in run.good_men


class TestMonotonicity:
    """Lemma 1: women never lose a partner and only trade up."""

    class _Monitor(ASMObserver):
        def __init__(self):
            self.partner_rank = {}
            self.violations = []

        def on_proposal_round_end(self, engine, stats):
            for w, m in enumerate(engine.woman_partner):
                prev = self.partner_rank.get(w)
                if m is None:
                    if prev is not None:
                        self.violations.append(("unmatched", w))
                    continue
                rank = engine.prefs.rank_of_man(w, m)
                if prev is not None and rank > prev:
                    self.violations.append(("worse", w, prev, rank))
                self.partner_rank[w] = rank

    @pytest.mark.parametrize("seed", range(4))
    def test_women_only_trade_up(self, seed):
        prefs = gnp_incomplete(16, 0.5, seed=seed)
        monitor = self._Monitor()
        asm(prefs, 0.3, observer=monitor)
        assert monitor.violations == []


class TestLemma2:
    def test_invariant_checked_runs_clean(self):
        for seed in range(3):
            prefs = complete_uniform(16, seed=seed)
            asm(prefs, 0.4, check_invariants=True)

    def test_single_quantile_match_empties_active_sets(self):
        prefs = complete_uniform(12, seed=1)
        engine = ASMEngine(prefs, 0.5, check_invariants=True)
        engine.quantile_match(list(range(12)))
        assert all(not a for a in engine.active)

    def test_quantile_match_resolves_every_activated_man(self):
        """Lemma 2's conclusion: each man who activated a quantile is
        matched within it or was rejected by all of it."""
        prefs = complete_uniform(12, seed=2)
        engine = ASMEngine(prefs, 0.5)
        activated = {
            m: set(
                engine.men_q[m].members_of(
                    engine.men_q[m].best_nonempty_quantile()
                )
            )
            for m in range(12)
        }
        engine.quantile_match(list(range(12)))
        for m, quantile in activated.items():
            partner = engine.man_partner[m]
            if partner is not None:
                assert partner in quantile
            else:
                # all of his first quantile rejected him (removed from Q)
                assert all(
                    not engine.men_q[m].contains(w) for w in quantile
                )


class TestRoundsAccounting:
    def test_scheduled_formula(self):
        """rounds_scheduled = scheduled PRs * (const + charge) under a
        fixed cost model."""
        prefs = complete_uniform(12, seed=0)
        engine = ASMEngine(prefs, 0.5, mm_cost_model=FixedCost(7))
        run = engine.run()
        expected_prs = (
            engine.outer_iteration_count()
            * engine.inner_iteration_count()
            * engine.k
        )
        assert run.proposal_rounds_scheduled == expected_prs
        assert run.rounds_scheduled == expected_prs * (
            CONSTANT_ROUNDS_PER_PROPOSAL_ROUND + 7
        )

    def test_active_le_scheduled_with_actual_cost(self):
        prefs = complete_uniform(12, seed=0)
        run = asm(prefs, 0.5, mm_cost_model=ActualCost())
        assert run.rounds_active <= run.rounds_scheduled

    def test_executed_le_scheduled(self):
        prefs = complete_uniform(12, seed=0)
        run = asm(prefs, 0.5)
        assert run.proposal_rounds_executed <= run.proposal_rounds_scheduled
        assert (
            run.quantile_match_calls_executed
            <= run.quantile_match_calls_scheduled
        )

    def test_hkp_cost_polylog(self):
        cost = HKPCost()
        assert cost.charge(2, None) == 1
        assert cost.charge(1024, None) == math.ceil(10.0 ** 4)
        assert cost.charge(1, None) == 1

    def test_messages_counted(self):
        prefs = complete_uniform(12, seed=0)
        run = asm(prefs, 0.5)
        assert run.messages.proposes > 0
        assert run.messages.accepts > 0
        assert run.messages.rejects > 0
        assert run.messages.total == (
            run.messages.proposes
            + run.messages.accepts
            + run.messages.rejects
        )

    def test_category_breakdown_sums(self):
        prefs = complete_uniform(10, seed=4)
        run = asm(prefs, 0.5)
        assert (
            sum(run.rounds.by_category_active.values()) == run.rounds_active
        )
        assert (
            sum(run.rounds.by_category_scheduled.values())
            == run.rounds_scheduled
        )


class TestOverridesAndOracles:
    def test_schedule_overrides(self):
        prefs = complete_uniform(8, seed=0)
        engine = ASMEngine(
            prefs, 0.5, inner_iterations=3, outer_iterations=2
        )
        assert engine.inner_iteration_count() == 3
        assert engine.outer_iteration_count() == 2
        run = engine.run()
        assert run.quantile_match_calls_scheduled == 6

    def test_greedy_oracle_equivalent_quality(self):
        prefs = complete_uniform(16, seed=6)
        run = asm(prefs, 0.3, mm_oracle=greedy_oracle())
        assert instability(prefs, run.matching) <= 0.3

    def test_randomized_oracle_quality(self):
        prefs = complete_uniform(16, seed=6)
        run = asm(prefs, 0.3, mm_oracle=israeli_itai_oracle(2))
        assert instability(prefs, run.matching) <= 0.3

    def test_deterministic_reproducibility(self):
        prefs = gnp_incomplete(14, 0.4, seed=9)
        assert asm(prefs, 0.25).matching == asm(prefs, 0.25).matching

    def test_large_k_mimics_gale_shapley(self):
        """k >= max degree means singleton quantiles: ASM degenerates to
        parallel Gale-Shapley behavior (remark after Algorithm 1) and
        gets essentially stable outputs."""
        prefs = complete_uniform(12, seed=3)
        engine = ASMEngine(prefs, eps=0.5, k=12, delta=0.125)
        run = engine.run()
        assert count_blocking_pairs(prefs, run.matching) <= (
            4 * prefs.num_edges / 12
        )

    def test_run_flat_requires_positive_iterations(self):
        prefs = complete_uniform(4, seed=0)
        with pytest.raises(InvalidParameterError):
            ASMEngine(prefs, 0.5).run_flat(0)


class TestEdgeCases:
    def test_empty_instance(self):
        prefs = PreferenceProfile([], [])
        run = asm(prefs, 0.5)
        assert len(run.matching) == 0
        assert run.good_men == frozenset()

    def test_all_isolated(self):
        prefs = PreferenceProfile([[], []], [[], []])
        run = asm(prefs, 0.5)
        assert len(run.matching) == 0
        assert run.good_men == frozenset({0, 1})
        assert run.rounds_active == 0

    def test_single_pair(self):
        prefs = PreferenceProfile([[0]], [[0]])
        run = asm(prefs, 0.5)
        assert run.matching.contains_pair(0, 0)
        assert instability(prefs, run.matching) == 0.0

    def test_one_woman_many_men(self):
        prefs = PreferenceProfile([[0], [0], [0]], [[2, 0, 1]])
        run = asm(prefs, 0.5)
        # She ends with her favorite suitor reachable by the algorithm.
        assert run.matching.partner_of_woman(0) is not None
        assert instability(prefs, run.matching) <= 0.5

    def test_eps_greater_than_one_rejected(self):
        # eps > 1 collapses k = ceil(8/eps) toward 1 and pushes
        # delta = eps/8 past 1/8, voiding Theorem 3's accounting —
        # params_for_eps must reject it.
        prefs = complete_uniform(6, seed=0)
        with pytest.raises(InvalidParameterError):
            asm(prefs, 2.0)

    def test_eps_nonpositive_rejected(self):
        prefs = complete_uniform(6, seed=0)
        for bad in (0.0, -0.5):
            with pytest.raises(InvalidParameterError):
                asm(prefs, bad)

    def test_eps_one_accepted(self):
        prefs = complete_uniform(6, seed=0)
        run = asm(prefs, 1.0)
        assert instability(prefs, run.matching) <= 1.0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 14),
    p=st.floats(0.2, 1.0),
    eps=st.sampled_from([0.25, 0.5, 1.0]),
    seed=st.integers(0, 50),
)
def test_theorem3_property(n, p, eps, seed):
    """Theorem 3 as a hypothesis property over random instances."""
    prefs = gnp_incomplete(n, p, seed=seed)
    run = asm(prefs, eps, check_invariants=True)
    run.matching.validate_against(prefs)
    assert count_blocking_pairs(prefs, run.matching) <= eps * prefs.num_edges
