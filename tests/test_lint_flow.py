"""The interprocedural determinism-flow analyzer (``repro.lint.flow``).

Covers the FLOW rule family end to end: the PR-6 set-built-outbox
regression shape, cross-module taint propagation, sanitizers, the
findings baseline, the source-hash cache, and the opt-in gating.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    LintConfig,
    apply_baseline,
    baseline_payload,
    fingerprint,
    load_baseline,
    run_lint,
)
from repro.lint.flow import analyze_project, digest_sources
from repro.lint.flow.cache import _MEMO, cached_findings, store_findings
from repro.lint.flow.taint import FlowFinding

REPO = Path(__file__).resolve().parent.parent

FLOW_CONFIG = LintConfig(flow=True)


def _write(tmp_path: Path, relpath: str, source: str) -> Path:
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


def _flow_rules(report):
    return [v.rule for v in report.violations if v.rule.startswith("FLOW")]


class TestSetBuiltOutboxRegression:
    """FLOW001 must flag the exact bug shape PR 6 fixed at runtime:
    an outbox dict built by iterating a set, yielded to the simulator.
    Before the simulator canonicalized delivery order, this made
    traces PYTHONHASHSEED-dependent across worker processes."""

    BUGGY = (
        "from repro.congest.message import Message\n"
        "\n"
        "def propose(graph, v):\n"
        "    active = set(graph[v])\n"
        "    inbox = yield {u: Message('PROPOSE') for u in active}\n"
        "    return inbox\n"
    )

    def test_set_built_outbox_is_flagged(self, tmp_path):
        _write(tmp_path, "src/repro/congest/protocols/buggy.py", self.BUGGY)
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        assert "FLOW001" in _flow_rules(report)

    def test_interprocedural_set_through_helper(self, tmp_path):
        # The set is constructed two calls away, in another module; the
        # taint must survive both returns to reach the yielded outbox.
        _write(
            tmp_path,
            "src/repro/congest/protocols/helpers.py",
            "def g0_neighbors(graph, v):\n"
            "    return set(graph[v])\n"
            "\n"
            "def eligible(graph, v):\n"
            "    return g0_neighbors(graph, v)\n",
        )
        _write(
            tmp_path,
            "src/repro/congest/protocols/proto.py",
            "from repro.congest.protocols.helpers import eligible\n"
            "from repro.congest.message import Message\n"
            "\n"
            "def propose(graph, v):\n"
            "    active = eligible(graph, v)\n"
            "    inbox = yield {u: Message('PROPOSE') for u in active}\n"
            "    return inbox\n",
        )
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        flagged = [
            v for v in report.violations if v.rule == "FLOW001"
        ]
        assert flagged, report.violations
        assert any("proto.py" in v.path for v in flagged)

    def test_sorted_sanitizer_clears_the_flow(self, tmp_path):
        fixed = self.BUGGY.replace("set(graph[v])", "sorted(set(graph[v]))")
        _write(tmp_path, "src/repro/congest/protocols/fixed.py", fixed)
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        assert _flow_rules(report) == []

    def test_loop_emission_over_set_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/congest/protocols/loopy.py",
            "from repro.congest.message import Message\n"
            "\n"
            "def rounds(neighbors):\n"
            "    rejected = set(neighbors)\n"
            "    for u in rejected:\n"
            "        yield {u: Message('REJECT')}\n",
        )
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        assert "FLOW001" in _flow_rules(report)


class TestEntropyFlow:
    def test_global_random_reaches_message(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/congest/protocols/lucky.py",
            "import random\n"
            "from repro.congest.message import Message\n"
            "\n"
            "def jitter():\n"
            "    return random.random()\n"
            "\n"
            "def send(v):\n"
            "    yield {v: Message('PING', payload=jitter())}\n",
        )
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        assert "FLOW002" in _flow_rules(report)

    def test_derive_seed_launders_entropy(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/congest/protocols/seeded.py",
            "import random\n"
            "from repro.congest.message import Message\n"
            "from repro.parallel.spec import derive_seed\n"
            "\n"
            "def send(spec, v):\n"
            "    token = derive_seed(spec, random.random())\n"
            "    yield {v: Message('PING', payload=token)}\n",
        )
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        assert _flow_rules(report) == []

    def test_hash_builtin_is_entropy(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/congest/protocols/hashy.py",
            "from repro.congest.message import Message\n"
            "\n"
            "def send(v):\n"
            "    yield {v: Message('PING', payload=hash(v))}\n",
        )
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        assert "FLOW002" in _flow_rules(report)


class TestRecordAndAttributeFlow:
    def test_set_iteration_reaches_telemetry(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/core/tally.py",
            "def tally(metrics, items):\n"
            "    pool = set(items)\n"
            "    metrics.inc('pool', ','.join(pool))\n",
        )
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        assert "FLOW003" in _flow_rules(report)

    def test_set_payload_reaches_save(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/core/exporter.py",
            "from repro.io import save_trace\n"
            "\n"
            "def export(records, path):\n"
            "    dirty = {r for r in records}\n"
            "    save_trace(dirty, path)\n",
        )
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        assert "FLOW003" in _flow_rules(report)

    def test_iterated_set_attribute_flagged_at_declaration(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/core/tracker.py",
            "from typing import Set\n"
            "\n"
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self.live: Set[str] = set()\n"
            "\n"
            "    def drain(self, out):\n"
            "        for item in self.live:\n"
            "            out.append(item)\n",
        )
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        flow004 = [v for v in report.violations if v.rule == "FLOW004"]
        assert flow004
        # Flagged at the declaration, not at the loop.
        assert flow004[0].line == 5

    def test_dict_attribute_is_not_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/core/tracker_ok.py",
            "from typing import Dict\n"
            "\n"
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self.live: Dict[str, int] = {}\n"
            "\n"
            "    def drain(self, out):\n"
            "        for item in self.live:\n"
            "            out.append(item)\n",
        )
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        assert "FLOW004" not in _flow_rules(report)


class TestGatingAndSuppression:
    SNIPPET = (
        "from repro.congest.message import Message\n"
        "\n"
        "def propose(graph, v):\n"
        "    active = set(graph[v])\n"
        "    inbox = yield {u: Message('PROPOSE') for u in active}\n"
        "    return inbox\n"
    )

    def test_flow_rules_are_off_by_default(self, tmp_path):
        _write(tmp_path, "src/repro/congest/protocols/p.py", self.SNIPPET)
        report = run_lint([tmp_path / "src"], LintConfig())
        assert _flow_rules(report) == []
        assert not any(r.startswith("FLOW") for r in report.rules_run)

    def test_enable_list_switches_flow_on(self, tmp_path):
        _write(tmp_path, "src/repro/congest/protocols/p.py", self.SNIPPET)
        config = LintConfig(enable=frozenset({"FLOW"}))
        report = run_lint([tmp_path / "src"], config)
        assert "FLOW001" in _flow_rules(report)

    def test_suppression_comment_silences_flow_finding(self, tmp_path):
        silenced = self.SNIPPET.replace(
            "for u in active}",
            "for u in active}  # lint: ignore[FLOW001]",
        )
        _write(tmp_path, "src/repro/congest/protocols/p.py", silenced)
        report = run_lint([tmp_path / "src"], FLOW_CONFIG)
        assert _flow_rules(report) == []
        assert report.suppressed >= 1

    def test_flow_scope_exempts_paths(self, tmp_path):
        _write(tmp_path, "src/repro/congest/protocols/p.py", self.SNIPPET)
        config = LintConfig(
            flow=True,
            exempt={"flow": ("src/repro/congest",)},
        )
        report = run_lint([tmp_path / "src"], config)
        assert _flow_rules(report) == []


class TestBaseline:
    def _flagged_report(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/congest/protocols/p.py",
            TestGatingAndSuppression.SNIPPET,
        )
        return run_lint([tmp_path / "src"], FLOW_CONFIG)

    def test_round_trip_accepts_findings(self, tmp_path):
        report = self._flagged_report(tmp_path)
        assert not report.ok
        count = len(report.violations)
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps(baseline_payload(report)))
        fresh = self._flagged_report(tmp_path)
        apply_baseline(fresh, load_baseline(baseline_file))
        assert fresh.ok
        assert fresh.baselined == count

    def test_fingerprint_is_line_independent(self, tmp_path, monkeypatch):
        # Two checkouts of the same finding, code shifted two lines
        # down in the second; linted via identical relative paths.
        _write(
            tmp_path / "a",
            "src/repro/congest/protocols/p.py",
            TestGatingAndSuppression.SNIPPET,
        )
        _write(
            tmp_path / "b",
            "src/repro/congest/protocols/p.py",
            "\n\n" + TestGatingAndSuppression.SNIPPET,
        )
        monkeypatch.chdir(tmp_path / "a")
        first = run_lint(["src"], FLOW_CONFIG)
        monkeypatch.chdir(tmp_path / "b")
        second = run_lint(["src"], FLOW_CONFIG)
        assert first.violations and second.violations
        assert {fingerprint(v) for v in first.violations} == {
            fingerprint(v) for v in second.violations
        }
        assert {v.line for v in first.violations} != {
            v.line for v in second.violations
        }

    def test_new_findings_still_fail(self, tmp_path):
        report = self._flagged_report(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps(baseline_payload(report)))
        # A new, different finding in another file is not accepted.
        _write(
            tmp_path,
            "src/repro/congest/protocols/q.py",
            "from repro.congest.message import Message\n"
            "\n"
            "def other(graph, v):\n"
            "    bad = frozenset(graph[v])\n"
            "    inbox = yield {u: Message('ACK') for u in bad}\n"
            "    return inbox\n",
        )
        fresh = run_lint([tmp_path / "src"], FLOW_CONFIG)
        apply_baseline(fresh, load_baseline(baseline_file))
        assert not fresh.ok
        assert all("q.py" in v.path for v in fresh.violations)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == frozenset()

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"surprise": True}))
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestCache:
    FINDING = FlowFinding(
        rule="FLOW001", path="src/repro/x.py", line=3, col=0, message="m"
    )

    def test_digest_is_order_independent_and_content_sensitive(self):
        a = digest_sources([("a.py", "x = 1"), ("b.py", "y = 2")])
        b = digest_sources([("b.py", "y = 2"), ("a.py", "x = 1")])
        c = digest_sources([("a.py", "x = 1"), ("b.py", "y = 3")])
        assert a == b
        assert a != c

    def test_memo_round_trip(self):
        digest = digest_sources([("memo.py", "pass")])
        _MEMO.pop(digest, None)
        assert cached_findings(digest) is None
        store_findings(digest, [self.FINDING])
        assert cached_findings(digest) == [self.FINDING]
        _MEMO.pop(digest, None)

    def test_on_disk_cache_round_trip(self, tmp_path, monkeypatch):
        cache_file = tmp_path / "flow-cache.json"
        monkeypatch.setenv("REPRO_LINT_FLOW_CACHE", str(cache_file))
        digest = digest_sources([("disk.py", "pass")])
        _MEMO.pop(digest, None)
        store_findings(digest, [self.FINDING])
        assert cache_file.is_file()
        _MEMO.pop(digest, None)  # force the disk path
        assert cached_findings(digest) == [self.FINDING]
        _MEMO.pop(digest, None)

    def test_stale_disk_cache_is_ignored(self, tmp_path, monkeypatch):
        cache_file = tmp_path / "flow-cache.json"
        monkeypatch.setenv("REPRO_LINT_FLOW_CACHE", str(cache_file))
        digest = digest_sources([("stale.py", "pass")])
        other = digest_sources([("stale.py", "changed = True")])
        _MEMO.pop(digest, None)
        _MEMO.pop(other, None)
        store_findings(other, [self.FINDING])
        _MEMO.pop(other, None)
        # The file holds `other`'s findings; asking for `digest` misses.
        assert cached_findings(digest) is None
        corrupted = tmp_path / "corrupt.json"
        corrupted.write_text("{not json")
        monkeypatch.setenv("REPRO_LINT_FLOW_CACHE", str(corrupted))
        assert cached_findings(digest) is None


class TestShippedTree:
    def test_analyzer_is_deterministic(self):
        sources = []
        for path in sorted((REPO / "src/repro/congest").rglob("*.py")):
            import ast

            rel = path.relative_to(REPO).as_posix()
            sources.append((rel, ast.parse(path.read_text())))
        first = analyze_project(sources)
        second = analyze_project(list(reversed(sources)))
        assert first == second

    def test_shipped_tree_passes_with_committed_baseline(self, monkeypatch):
        # Fingerprints embed repo-relative paths, so lint the way CI
        # does: from the repo root.
        monkeypatch.chdir(REPO)
        report = run_lint(["src/repro"], FLOW_CONFIG)
        accepted = load_baseline("benchmarks/lint_baseline.json")
        apply_baseline(report, accepted)
        flow = [v for v in report.violations if v.rule.startswith("FLOW")]
        assert flow == [], [v.format() for v in flow]
        assert report.baselined > 0
