"""Tests for repro.analysis.tables."""

from __future__ import annotations

from repro.analysis.tables import format_table, format_value


class TestFormatValue:
    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_formats(self):
        assert format_value(0.0) == "0"
        assert format_value(0.5) == "0.5"
        assert format_value(123456.0) == "1.235e+05"
        assert format_value(1e-6) == "1.000e-06"

    def test_passthrough(self):
        assert format_value(42) == "42"
        assert format_value("x") == "x"


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"
        assert format_table([], title="t") == "t\n(no rows)"

    def test_alignment_and_rule(self):
        out = format_table([{"n": 8, "value": 0.25}, {"n": 128, "value": 1.0}])
        lines = out.splitlines()
        assert lines[0].startswith("n")
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_missing_cells_dash(self):
        out = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in out.splitlines()[2]

    def test_title(self):
        out = format_table([{"a": 1}], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_explicit_columns_order(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = out.splitlines()[0]
        assert header.index("b") < header.index("a")
