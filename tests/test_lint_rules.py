"""Rule-engine mechanics: suppression comments, configuration loading
and scoping, reporters, and the ``repro-asm lint`` CLI subcommand."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    LintConfig,
    LintReport,
    Violation,
    all_rules,
    format_json,
    format_text,
    load_config,
    run_lint,
)
from repro.lint.config import _path_matches

REPO = Path(__file__).resolve().parent.parent


def _write(tmp_path: Path, relpath: str, source: str) -> Path:
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


DET_SNIPPET = (
    "def f(items):\n"
    "    pool = set(items)\n"
    "    return [x for x in pool]\n"
)


class TestSuppression:
    def test_same_line_named_suppression(self, tmp_path):
        target = _write(
            tmp_path,
            "src/repro/core/s.py",
            "def f(items):\n"
            "    pool = set(items)\n"
            "    return [x for x in pool]  # lint: ignore[DET001]\n",
        )
        report = run_lint([target], LintConfig())
        assert report.ok
        assert report.suppressed == 1

    def test_suppression_is_per_rule(self, tmp_path):
        # Ignoring an unrelated rule must not silence DET001.
        target = _write(
            tmp_path,
            "src/repro/core/s.py",
            "def f(items):\n"
            "    pool = set(items)\n"
            "    return [x for x in pool]  # lint: ignore[TEL001]\n",
        )
        report = run_lint([target], LintConfig())
        assert [v.rule for v in report.violations] == ["DET001"]
        assert report.suppressed == 0

    def test_bare_ignore_suppresses_all_rules(self, tmp_path):
        target = _write(
            tmp_path,
            "src/repro/core/s.py",
            "def f(items):\n"
            "    pool = set(items)\n"
            "    return [x for x in pool]  # lint: ignore\n",
        )
        report = run_lint([target], LintConfig())
        assert report.ok
        assert report.suppressed == 1

    def test_comma_separated_rule_list(self, tmp_path):
        target = _write(
            tmp_path,
            "src/repro/core/s.py",
            "import random\n"
            "def f(items):\n"
            "    return sorted(set(items)), random.random()  "
            "# lint: ignore[DET001, DET002]\n",
        )
        report = run_lint([target], LintConfig())
        assert report.ok

    def test_marker_inside_string_is_not_a_suppression(self, tmp_path):
        target = _write(
            tmp_path,
            "src/repro/core/s.py",
            "def f(items):\n"
            "    pool = set(items)\n"
            '    return [x for x in pool], "lint: ignore[DET001]"\n',
        )
        report = run_lint([target], LintConfig())
        assert [v.rule for v in report.violations] == ["DET001"]


class TestConfig:
    def test_path_matching_relative_and_absolute(self):
        assert _path_matches("src/repro/core/asm.py", "src/repro/core")
        assert _path_matches("/abs/repo/src/repro/core/asm.py", "src/repro/core")
        assert not _path_matches("src/repro/obs/metrics.py", "src/repro/core")
        # Prefixes match path components, not substrings.
        assert not _path_matches("src/repro/core2/x.py", "src/repro/core")

    def test_disable_by_rule_and_family(self):
        config = LintConfig().with_disabled("DET001", "TEL")
        assert not config.rule_enabled("DET001", "DET")
        assert config.rule_enabled("DET002", "DET")
        assert not config.rule_enabled("TEL001", "TEL")

    def test_enable_allowlist(self):
        config = LintConfig(enable=frozenset({"DET"}))
        assert config.rule_enabled("DET001", "DET")
        assert not config.rule_enabled("TEL001", "TEL")

    def test_load_config_reads_tool_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\n"
            'paths = ["src/custom"]\n'
            'disable = ["TEL003"]\n'
            "\n"
            "[tool.repro-lint.scopes]\n"
            'determinism = ["src/custom/algo"]\n'
        )
        config = load_config(pyproject)
        assert config.paths == ("src/custom",)
        assert not config.rule_enabled("TEL003", "TEL")
        assert config.rule_enabled("TEL001", "TEL")
        assert config.scopes["determinism"] == ("src/custom/algo",)
        # Unmentioned scopes keep their defaults.
        assert "protocols" in config.scopes

    def test_load_config_missing_file_returns_defaults(self, tmp_path):
        config = load_config(tmp_path / "nope.toml")
        assert config == LintConfig()

    def test_repo_pyproject_parses(self):
        config = load_config(REPO / "pyproject.toml")
        assert config.paths, "repo [tool.repro-lint] must define paths"

    def test_toml_subset_fallback_parser(self):
        from repro.lint.config import _parse_toml_subset

        doc = _parse_toml_subset(
            "[tool.repro-lint]\n"
            'paths = ["a", "b"]\n'
            "flag = true\n"
            "[tool.repro-lint.scopes]\n"
            'library = ["src"]\n'
        )
        table = doc["tool"]["repro-lint"]
        assert table["paths"] == ["a", "b"]
        assert table["flag"] is True
        assert table["scopes"]["library"] == ["src"]

    def test_scoping_keeps_rules_out_of_foreign_paths(self, tmp_path):
        # A determinism violation outside core/mm/baselines is not
        # flagged by DET rules.
        target = _write(tmp_path, "src/repro/analysis/d.py", DET_SNIPPET)
        report = run_lint([target], LintConfig())
        assert "DET001" not in {v.rule for v in report.violations}


class TestReporters:
    def _report(self) -> LintReport:
        return LintReport(
            violations=[
                Violation("b.py", 3, 0, "DET001", "set iteration"),
                Violation("a.py", 1, 4, "TEL001", "print in library"),
            ],
            files_scanned=2,
            rules_run=("DET001", "TEL001"),
            suppressed=1,
        )

    def test_text_report_lists_sorted_violations(self):
        text = format_text(self._report())
        lines = text.splitlines()
        assert lines[0] == "a.py:1:4: TEL001 print in library"
        assert lines[1] == "b.py:3:0: DET001 set iteration"
        assert "2 violation(s)" in text
        assert "1 suppressed" in text

    def test_json_report_round_trips(self):
        payload = json.loads(format_json(self._report()))
        assert payload["ok"] is False
        assert payload["counts"] == {"DET001": 1, "TEL001": 1}
        assert payload["violations"][0]["path"] == "a.py"
        assert payload["suppressed"] == 1

    def test_clean_text_report(self):
        text = format_text(LintReport(files_scanned=5, rules_run=("X",)))
        assert text.startswith("ok: 5 file(s)")


class TestEngine:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        target = _write(tmp_path, "src/repro/core/bad.py", "def f(:\n")
        report = run_lint([target], LintConfig())
        assert [v.rule for v in report.violations] == ["E000"]

    def test_rule_ids_are_unique_and_well_formed(self):
        rules = all_rules()
        ids = [rule.rule_id for rule in rules]
        assert len(ids) == len(set(ids))
        for rule in rules:
            assert rule.rule_id.startswith(rule.family)
            assert rule.description
            assert rule.scope in LintConfig().scopes

    def test_directory_walk_deduplicates(self, tmp_path):
        target = _write(tmp_path, "src/repro/core/s.py", DET_SNIPPET)
        report = run_lint([target, target.parent], LintConfig())
        assert len(report.violations) == 1


class TestCLI:
    def test_lint_clean_tree_exits_zero(self, capsys):
        code = main(
            [
                "lint",
                str(REPO / "src" / "repro"),
                "--config",
                str(REPO / "pyproject.toml"),
            ]
        )
        assert code == 0
        assert "ok:" in capsys.readouterr().out

    def test_lint_violations_exit_one_with_json(self, tmp_path, capsys):
        target = _write(tmp_path, "src/repro/core/bad.py", DET_SNIPPET)
        code = main(["lint", str(target), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(v["rule"] == "DET001" for v in payload["violations"])

    def test_lint_disable_flag(self, tmp_path, capsys):
        target = _write(tmp_path, "src/repro/core/bad.py", DET_SNIPPET)
        code = main(["lint", str(target), "--disable", "DET001"])
        assert code == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rule_id in (
            "CONGEST001", "MSG001", "DET001", "TEL001", "TEL004", "FLOW001"
        ):
            assert rule_id in out

    def test_list_rules_marks_flow_disabled_without_flag(self, capsys):
        main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        flow_lines = [l for l in out.splitlines() if "FLOW001" in l]
        assert flow_lines and flow_lines[0].startswith("-")
        main(["lint", "--flow", "--list-rules"])
        out = capsys.readouterr().out
        flow_lines = [l for l in out.splitlines() if "FLOW001" in l]
        assert flow_lines and not flow_lines[0].startswith("-")

    FLOW_SNIPPET = (
        "from repro.congest.message import Message\n"
        "\n"
        "def _eligible(graph, v):\n"
        "    return set(graph[v])\n"
        "\n"
        "def node_program(graph, v):\n"
        "    active = _eligible(graph, v)\n"
        "    inbox = yield {u: Message('PROPOSE') for u in active}\n"
        "    return inbox\n"
    )

    def test_flow_flag_enables_interprocedural_analysis(
        self, tmp_path, capsys
    ):
        target = _write(
            tmp_path, "src/repro/congest/protocols/p.py", self.FLOW_SNIPPET
        )
        # Without --flow the finding needs whole-program reasoning the
        # per-file rules don't attempt.
        assert main(["lint", str(target), "--format", "json"]) == 0
        capsys.readouterr()
        code = main(["lint", str(target), "--flow", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(v["rule"] == "FLOW001" for v in payload["violations"])

    def test_sarif_format(self, tmp_path, capsys):
        target = _write(tmp_path, "src/repro/core/bad.py", DET_SNIPPET)
        code = main(["lint", str(target), "--format", "sarif"])
        assert code == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        results = run["results"]
        assert any(r["ruleId"] == "DET001" for r in results)
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r["ruleId"] for r in results} <= rule_ids
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_baseline_update_then_pass(self, tmp_path, capsys):
        target = _write(
            tmp_path, "src/repro/congest/protocols/p.py", self.FLOW_SNIPPET
        )
        baseline = tmp_path / "baseline.json"
        code = main(
            [
                "lint", str(target), "--flow",
                "--baseline", str(baseline), "--update-baseline",
            ]
        )
        assert code == 0
        assert "accepted" in capsys.readouterr().out
        code = main(
            [
                "lint", str(target), "--flow",
                "--baseline", str(baseline), "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["baselined"] >= 1

    def test_update_baseline_requires_baseline_path(self, tmp_path, capsys):
        target = _write(tmp_path, "src/repro/core/bad.py", DET_SNIPPET)
        code = main(["lint", str(target), "--update-baseline"])
        assert code == 2
        assert "requires --baseline" in capsys.readouterr().err


class TestSimulatorCrossReference:
    """Runtime diagnostics point back at the static rules."""

    def test_bit_cap_error_names_round_and_rule(self):
        from repro.congest.message import Message
        from repro.congest.simulator import Simulator
        from repro.errors import ProtocolViolationError
        from repro.graphs import Graph

        graph = Graph()
        graph.add_edge("a", "b")

        def sender():
            yield {"b": Message("POINT", tuple(range(50)))}

        def receiver():
            yield {}

        sim = Simulator(graph, {"a": sender(), "b": receiver()})
        with pytest.raises(ProtocolViolationError) as exc:
            sim.run()
        text = str(exc.value)
        assert "round 1" in text
        assert "MSG002" in text
        assert "docs/static_analysis.md" in text


class TestSpanBalance:
    """TEL004: open_span without close_span in the same function."""

    def _report(self, tmp_path, source):
        target = _write(tmp_path, "src/repro/core/spans.py", source)
        return run_lint([target], LintConfig())

    def test_unbalanced_open_is_flagged(self, tmp_path):
        report = self._report(
            tmp_path,
            "def f(tracer):\n"
            "    sid = tracer.open_span('work')\n"
            "    return sid\n",
        )
        assert not report.ok
        assert [v.rule for v in report.violations] == ["TEL004"]

    def test_try_finally_pairing_is_clean(self, tmp_path):
        report = self._report(
            tmp_path,
            "def f(tracer):\n"
            "    sid = tracer.open_span('work')\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        tracer.close_span(sid)\n",
        )
        assert report.ok

    def test_span_context_manager_is_clean(self, tmp_path):
        report = self._report(
            tmp_path,
            "def f(tracer):\n"
            "    with tracer.span('work'):\n"
            "        return 1\n",
        )
        assert report.ok

    def test_close_in_nested_function_does_not_count(self, tmp_path):
        report = self._report(
            tmp_path,
            "def f(tracer):\n"
            "    sid = tracer.open_span('work')\n"
            "    def closer():\n"
            "        tracer.close_span(sid)\n"
            "    return closer\n",
        )
        assert not report.ok
        assert [v.rule for v in report.violations] == ["TEL004"]

    def test_module_level_pairing(self, tmp_path):
        report = self._report(
            tmp_path,
            "import repro\n"
            "TRACER = repro.CausalTracer()\n"
            "SID = TRACER.open_span('module')\n",
        )
        assert not report.ok
        assert [v.rule for v in report.violations] == ["TEL004"]

    def test_suppression_comment(self, tmp_path):
        report = self._report(
            tmp_path,
            "def f(tracer):\n"
            "    return tracer.open_span('x')  # lint: ignore[TEL004]\n",
        )
        assert report.ok
        assert report.suppressed == 1
