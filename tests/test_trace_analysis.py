"""Trace analysis: chain reconstruction, critical path, fault impact,
and blocking-pair explanations — the acceptance surface of the causal
trace layer (every blocking pair and every dropped message must be
explainable from a pinned seeded run)."""

from __future__ import annotations

import pytest

from repro.analysis.stability import find_blocking_pairs
from repro.congest.protocols import run_congest_asm
from repro.faults.harness import fault_plan_for_profile
from repro.obs.telemetry import Telemetry
from repro.trace.analysis import CausalTrace, explain_blocking_pairs
from repro.trace.span import CausalTracer
from repro.workloads.generators import complete_uniform


@pytest.fixture(scope="module")
def faulty_run():
    """One pinned seeded faulty run, traced (n=4, drop_rate=0.25)."""
    prefs = complete_uniform(4, seed=0)
    tracer = CausalTracer()
    plan = fault_plan_for_profile(prefs, fault_seed=7, drop_rate=0.25)
    result = run_congest_asm(
        prefs,
        0.5,
        k=2,
        inner_iterations=2,
        outer_iterations=2,
        mm_iterations=4,
        telemetry=Telemetry.tracing(tracer=tracer),
        faults=plan,
    )
    return prefs, result, CausalTrace(tracer.to_records())


class TestChains:
    def test_every_dropped_message_has_a_full_chain(self, faulty_run):
        _, _, trace = faulty_run
        dropped = trace.dropped()
        assert dropped, "the pinned run must drop messages"
        for record in dropped:
            chain = trace.chain(record["id"])
            assert chain[-1]["id"] == record["id"]
            # Root-first and fully resolved back to a chain root.
            assert chain[0]["parent"] == ""
            for parent, child in zip(chain, chain[1:]):
                assert child["parent"] == parent["id"]
            rounds = [r["round"] for r in chain]
            assert rounds == sorted(rounds)

    def test_descendants_are_downstream(self, faulty_run):
        _, _, trace = faulty_run
        roots = [m for m in trace.messages() if m["parent"] == ""]
        assert roots
        root = roots[0]
        for tid in trace.descendants(root["id"]):
            descendant = trace.message(tid)
            assert descendant["round"] >= root["round"]
            assert root["id"] in [r["id"] for r in trace.chain(tid)]

    def test_critical_path_is_a_chain(self, faulty_run):
        _, _, trace = faulty_run
        path = trace.critical_path()
        assert len(path) >= 2
        for parent, child in zip(path, path[1:]):
            assert child["parent"] == parent["id"]
        # It is maximal: no message has a longer chain.
        longest = max(
            len(trace.chain(m["id"])) for m in trace.messages()
        )
        assert len(path) == longest

    def test_chain_of_unknown_id_is_empty(self, faulty_run):
        _, _, trace = faulty_run
        assert trace.chain("0000000000000000") == []


class TestFaultImpact:
    def test_impact_report(self, faulty_run):
        _, result, trace = faulty_run
        impact = trace.fault_impact()
        assert impact["by_action"].get("drop", 0) > 0
        assert (
            len(impact["dropped_messages"])
            == result.fault_stats.messages_dropped
        )
        for entry in impact["dropped_messages"]:
            assert entry["chain_depth"] >= 1
            assert entry["descendants"] >= 0
            assert entry["fault"] in ("drop", "drop_late")

    def test_messages_between_accepts_tuples_and_reprs(self, faulty_run):
        _, _, trace = faulty_run
        via_tuple = trace.messages_between(("M", 0), ("W", 0))
        via_repr = trace.messages_between(repr(("M", 0)), repr(("W", 0)))
        assert via_tuple == via_repr
        rounds = [r["round"] for r in via_tuple]
        assert rounds == sorted(rounds)

    def test_no_unclosed_spans(self, faulty_run):
        _, _, trace = faulty_run
        assert trace.unclosed_spans() == []


class TestExplainBlockingPairs:
    def test_every_blocking_pair_is_explained(self, faulty_run):
        prefs, result, trace = faulty_run
        pairs = sorted(find_blocking_pairs(prefs, result.matching))
        assert pairs, "the pinned faulty run must leave blocking pairs"
        explanations = explain_blocking_pairs(
            trace, prefs, result.matching
        )
        assert [tuple(e["pair"]) for e in explanations] == pairs
        for explanation in explanations:
            verdict = explanation["verdict"]
            assert (
                verdict == "no-contact"
                or verdict.startswith("dropped:")
                or verdict.startswith("delivered:")
            )
            if verdict == "no-contact":
                assert explanation["messages"] == []
            else:
                # The last message's chain is reconstructed in full.
                chain = explanation["last_chain"]
                assert chain
                assert chain[0]["parent"] == ""
                assert (
                    chain[-1]["id"] == explanation["messages"][-1]["id"]
                )

    def test_verdict_names_the_fault_when_dropped(self, faulty_run):
        prefs, result, trace = faulty_run
        for m, w in sorted(find_blocking_pairs(prefs, result.matching)):
            explanation = trace.explain_blocking_pair(m, w)
            if explanation["verdict"].startswith("dropped:"):
                last = explanation["messages"][-1]
                assert last["fault"]
                break

    def test_unknown_pair_is_no_contact(self, faulty_run):
        _, _, trace = faulty_run
        explanation = trace.explain_blocking_pair(97, 98)
        assert explanation["verdict"] == "no-contact"
        assert explanation["messages"] == []
        assert explanation["last_chain"] == []


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
