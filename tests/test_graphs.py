"""Unit tests for repro.graphs."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    bipartite_graph_from_edges,
    is_man_node,
    man_node,
    node_index,
    woman_node,
)


class TestNodeIds:
    def test_man_woman_nodes_distinct(self):
        assert man_node(3) != woman_node(3)
        assert is_man_node(man_node(0))
        assert not is_man_node(woman_node(0))
        assert not is_man_node("plain-string")

    def test_node_index(self):
        assert node_index(man_node(7)) == 7
        assert node_index(woman_node(9)) == 9


class TestGraph:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert len(g) == 0
        assert list(g) == []

    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert g.degree(1) == 1

    def test_add_edge_idempotent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph().add_edge(1, 1)

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(5)
        g.add_node(5)
        assert g.num_nodes == 1
        assert g.degree(5) == 0

    def test_remove_node(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.remove_node(2)
        assert not g.has_node(2)
        assert not g.has_edge(1, 2)
        assert g.degree(1) == 0
        assert g.num_edges == 0

    def test_remove_absent_node_noop(self):
        g = Graph()
        g.remove_node(99)
        assert g.num_nodes == 0

    def test_remove_nodes_bulk(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.remove_nodes([1, 3])
        assert g.nodes() == [2, 4]

    def test_copy_is_deep(self):
        g = Graph()
        g.add_edge(1, 2)
        h = g.copy()
        h.remove_node(1)
        assert g.has_edge(1, 2)
        assert not h.has_node(1)

    def test_edges_deterministic_and_unique(self):
        g = Graph()
        g.add_edge(2, 1)
        g.add_edge(1, 3)
        edges = g.edges()
        assert len(edges) == 2
        assert len({frozenset(e) for e in edges}) == 2
        assert edges == g.copy().edges()

    def test_isolated_nodes(self):
        g = Graph()
        g.add_node(1)
        g.add_edge(2, 3)
        assert g.isolated_nodes() == [1]

    def test_repr(self):
        g = Graph()
        g.add_edge(1, 2)
        assert "num_nodes=2" in repr(g)


class TestBipartiteBuilder:
    def test_includes_isolated_players(self):
        g = bipartite_graph_from_edges([(0, 1)], n_men=2, n_women=2)
        assert g.num_nodes == 4
        assert g.has_edge(man_node(0), woman_node(1))
        assert g.degree(man_node(1)) == 0

    def test_without_counts_only_edge_nodes(self):
        g = bipartite_graph_from_edges([(0, 0)])
        assert g.num_nodes == 2

    def test_from_profile_edges(self, small_incomplete):
        p = small_incomplete
        g = bipartite_graph_from_edges(p.iter_edges(), p.n_men, p.n_women)
        assert g.num_edges == p.num_edges
        for m in range(p.n_men):
            assert g.degree(man_node(m)) == p.deg_man(m)
