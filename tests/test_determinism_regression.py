"""Determinism regression tests (companion to lint rules DET001/DET002).

The engine fixes in ``core/asm.py`` (sorted proposal order, sorted
rejection processing) and ``core/matching.py`` (canonical internal
insertion order) guarantee same input ⇒ identical output — bit-for-bit,
not just equal-quality.  These tests pin that down so a future set/dict
iteration regression fails loudly instead of flaking across runs.
"""

from __future__ import annotations

import pytest

from repro.core.asm import asm
from repro.core.matching import Matching
from repro.core.rand_asm import rand_asm
from repro.workloads.generators import (
    complete_uniform,
    gnp_incomplete,
    master_list,
)


def _instances():
    return [
        complete_uniform(12, seed=5),
        gnp_incomplete(14, 0.6, seed=11),
        master_list(10, seed=3),
    ]


class TestASMDeterminism:
    @pytest.mark.parametrize("idx", range(3))
    def test_same_input_identical_matching(self, idx):
        prefs = _instances()[idx]
        first = asm(prefs, eps=0.25)
        second = asm(prefs, eps=0.25)
        assert first.matching == second.matching
        # Identical serialized form, not just set-equality: insertion
        # order of the result is canonical too.
        assert first.matching.to_json() == second.matching.to_json()
        assert first.rounds_scheduled == second.rounds_scheduled

    def test_fresh_profile_same_output(self):
        # Rebuilding the instance from scratch (new objects, new hash
        # randomization victims) must not change the result.
        a = asm(complete_uniform(16, seed=9), eps=0.3).matching
        b = asm(complete_uniform(16, seed=9), eps=0.3).matching
        assert a.to_json() == b.to_json()


class TestRandASMDeterminism:
    def test_seeded_runs_identical(self):
        prefs = complete_uniform(12, seed=2)
        a = rand_asm(prefs, eps=0.3, seed=7)
        b = rand_asm(prefs, eps=0.3, seed=7)
        assert a.matching.to_json() == b.matching.to_json()
        assert a.rounds_scheduled == b.rounds_scheduled

    def test_different_seeds_may_differ_but_are_each_stable(self):
        prefs = complete_uniform(12, seed=2)
        for seed in (1, 2):
            result = rand_asm(prefs, eps=0.3, seed=seed)
            result.matching.validate_against(prefs)


class TestMatchingCanonicalOrder:
    def test_construction_order_does_not_leak(self):
        pairs = [(3, 1), (0, 2), (2, 0)]
        forward = Matching(pairs)
        backward = Matching(reversed(pairs))
        from_set = Matching(frozenset(pairs))
        assert forward.to_json() == backward.to_json() == from_set.to_json()
        assert list(forward.pairs()) == [(0, 2), (2, 0), (3, 1)]
