"""Tests for the random greedy baseline."""

from __future__ import annotations

from repro.baselines.random_greedy import random_greedy_matching
from repro.core.preferences import PreferenceProfile
from repro.workloads.generators import complete_uniform, gnp_incomplete


class TestRandomGreedy:
    def test_output_is_valid_matching(self):
        prefs = gnp_incomplete(15, 0.3, seed=2)
        result = random_greedy_matching(prefs, seed=1)
        result.matching.validate_against(prefs)

    def test_maximal_on_communication_graph(self):
        """Every remaining edge has a matched endpoint."""
        prefs = gnp_incomplete(15, 0.3, seed=2)
        matching = random_greedy_matching(prefs, seed=3).matching
        for m, w in prefs.iter_edges():
            assert matching.is_man_matched(m) or matching.is_woman_matched(w)

    def test_complete_graph_perfect(self):
        prefs = complete_uniform(10, seed=0)
        assert len(random_greedy_matching(prefs, seed=1).matching) == 10

    def test_deterministic_in_seed(self):
        prefs = complete_uniform(10, seed=0)
        a = random_greedy_matching(prefs, seed=5).matching
        b = random_greedy_matching(prefs, seed=5).matching
        assert a == b

    def test_different_seeds_usually_differ(self):
        prefs = complete_uniform(12, seed=0)
        matchings = {
            random_greedy_matching(prefs, seed=s).matching for s in range(5)
        }
        assert len(matchings) > 1

    def test_empty(self):
        prefs = PreferenceProfile([], [])
        assert len(random_greedy_matching(prefs).matching) == 0
