"""Tests for the CONGEST message recorder."""

from __future__ import annotations

import pytest

from repro.congest.message import Message
from repro.congest.recorder import MessageEvent, MessageRecorder
from repro.congest.simulator import Simulator
from repro.graphs import Graph


def ping_pong_setup(recorder):
    """Two nodes: a pings for 3 rounds, b pongs back."""
    g = Graph()
    g.add_edge("a", "b")

    def pinger():
        for _ in range(3):
            yield {"b": Message("PING")}
        yield {}

    def ponger_responsive():
        outbox = {}
        for _ in range(4):
            inbox = yield outbox
            outbox = (
                {"a": Message("PONG", (1,))}
                if any(m.kind == "PING" for m in inbox.values())
                else {}
            )
        return None

    sim = Simulator(
        g, {"a": pinger(), "b": ponger_responsive()}, recorder=recorder
    )
    sim.run()
    return sim


class TestRecorder:
    def test_records_all_messages(self):
        rec = MessageRecorder()
        sim = ping_pong_setup(rec)
        assert rec.total_messages == sim.stats.messages
        assert rec.counts_by_kind["PING"] == 3
        assert rec.counts_by_kind["PONG"] == 3
        assert len(rec.events) == 6

    def test_event_fields(self):
        rec = MessageRecorder()
        ping_pong_setup(rec)
        first = rec.events[0]
        assert isinstance(first, MessageEvent)
        assert first.kind == "PING"
        assert first.sender == "a" and first.recipient == "b"
        assert first.round == 1

    def test_kind_filter_keeps_aggregates(self):
        rec = MessageRecorder(kinds=["PONG"])
        ping_pong_setup(rec)
        assert all(e.kind == "PONG" for e in rec.events)
        assert rec.counts_by_kind["PING"] == 3  # aggregate still counted

    def test_bounded_buffer_drops_oldest(self):
        rec = MessageRecorder(max_events=2)
        ping_pong_setup(rec)
        assert len(rec.events) == 2
        assert rec.dropped_events == 4
        assert rec.total_messages == 6

    def test_events_for_node(self):
        rec = MessageRecorder()
        ping_pong_setup(rec)
        assert len(rec.events_for("a", role="sender")) == 3
        assert len(rec.events_for("a", role="recipient")) == 3
        assert len(rec.events_for("a")) == 6
        with pytest.raises(ValueError):
            rec.events_for("a", role="nonsense")

    def test_busiest_round(self):
        rec = MessageRecorder()
        ping_pong_setup(rec)
        assert rec.busiest_round() in rec.counts_by_round
        assert MessageRecorder().busiest_round() is None

    def test_tables(self):
        rec = MessageRecorder()
        ping_pong_setup(rec)
        seq = rec.sequence_table(limit=3)
        assert "message sequence" in seq
        assert "more recorded events" in seq
        rows = rec.summary_rows()
        assert {"kind": "PING", "messages": 3} in rows

    def test_attached_to_congest_asm(self):
        """A recorder on a full ASM protocol run sees the algorithm's
        message kinds with consistent totals."""
        from repro.congest.protocols.asm_protocol import run_congest_asm
        from repro.workloads.generators import complete_uniform

        rec = MessageRecorder()
        prefs = complete_uniform(5, seed=1)
        result = run_congest_asm(
            prefs,
            0.5,
            k=3,
            inner_iterations=3,
            outer_iterations=2,
            mm_iterations=10,
            recorder=rec,
        )
        assert rec.total_messages == result.stats.messages
        assert rec.counts_by_kind["PROPOSE"] > 0
        assert rec.counts_by_kind["ACCEPT"] > 0
        assert "MM_POINT" in rec.counts_by_kind

    def test_kind_filter_and_cap_interaction(self):
        """Filtered-out kinds count in aggregates but never evict
        recorded events: with ``kinds=["PONG"]`` and room for 2 events,
        all 3 PONGs compete for the buffer while the 3 PINGs are only
        tallied."""
        rec = MessageRecorder(max_events=2, kinds=["PONG"])
        sim = ping_pong_setup(rec)
        assert [e.kind for e in rec.events] == ["PONG", "PONG"]
        # The two newest PONGs survive; only the oldest PONG dropped.
        assert rec.dropped_events == 1
        # Aggregates still see everything, filtered kinds included.
        assert rec.counts_by_kind["PING"] == 3
        assert rec.total_messages == sim.stats.messages == 6

    def test_busiest_round_prefers_earliest_on_tie(self):
        rec = MessageRecorder()
        ping_pong_setup(rec)
        # Rounds 2 and 3 both carry PING+PONG (2 messages each);
        # ties break toward the earliest round.
        assert rec.counts_by_round[2] == rec.counts_by_round[3] == 2
        assert rec.busiest_round() == 2

    def test_counts_by_round_kind(self):
        rec = MessageRecorder(kinds=["PONG"])
        ping_pong_setup(rec)
        # Per-(round, kind) tallies ignore the recording filter too.
        assert rec.counts_by_round_kind[(1, "PING")] == 1
        assert rec.counts_by_round_kind[(2, "PONG")] == 1

    def test_minimal_protocol_plumbing(self):
        rec = MessageRecorder()
        g = Graph()
        g.add_edge("x", "y")

        def talk():
            yield {"y": Message("PROPOSE")}

        def listen():
            yield {}

        Simulator(g, {"x": talk(), "y": listen()}, recorder=rec).run()
        assert rec.counts_by_kind["PROPOSE"] == 1
