#!/usr/bin/env python3
"""Scenario: matching in a social network with locality.

The paper motivates the distributed model with social networks: players
can only be matched with acquaintances and never talk to strangers.
Here players live in the unit square and only know (and rank, by
distance) partners within a radius — a sparse, irregular communication
graph with unbounded preference lists, exactly the regime where ASM is
the first sub-polynomial-round algorithm.

We compare, at the SAME communication budget, ASM against truncated
Gale–Shapley (the prior art for almost stable matchings, whose
guarantee only covers bounded lists), plus the exact GS reference.

Run:  python examples/social_network.py [n]
"""

from __future__ import annotations

import sys

from repro import (
    asm,
    euclidean,
    gale_shapley,
    instability,
    parallel_gale_shapley,
    truncated_gale_shapley,
)
from repro.analysis.tables import format_table
from repro.baselines.gale_shapley import ROUNDS_PER_GS_ITERATION


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    eps = 0.2

    print(f"Building a latent-space acquaintance graph with n = {n} ...")
    prefs = euclidean(n, seed=3)
    degrees = [prefs.deg_man(m) for m in range(n) if prefs.deg_man(m)]
    print(
        f"|E| = {prefs.num_edges}, degrees: min={min(degrees)}, "
        f"max={max(degrees)} (alpha = {prefs.regularity_alpha():.1f})"
    )

    run = asm(prefs, eps)
    budget_iterations = max(1, run.rounds_active // ROUNDS_PER_GS_ITERATION)
    tgs = truncated_gale_shapley(prefs, budget_iterations)
    full = parallel_gale_shapley(prefs)
    exact = gale_shapley(prefs)

    rows = [
        {
            "algorithm": f"ASM(eps={eps})",
            "instability": instability(prefs, run.matching),
            "matched": len(run.matching),
            "rounds": run.rounds_active,
        },
        {
            "algorithm": f"truncated GS @ same budget",
            "instability": instability(prefs, tgs.matching),
            "matched": len(tgs.matching),
            "rounds": tgs.rounds,
        },
        {
            "algorithm": "GS run to completion",
            "instability": instability(prefs, full.matching),
            "matched": len(full.matching),
            "rounds": full.rounds,
        },
        {
            "algorithm": "GS centralized (proposals)",
            "instability": 0.0,
            "matched": len(exact.matching),
            "rounds": exact.proposals,
        },
    ]
    print(format_table(rows, title="\nsocial-network matching"))
    print(
        f"\nASM is guaranteed <= {eps} instability here (unbounded lists); "
        "truncated GS has no such guarantee outside bounded degrees."
    )


if __name__ == "__main__":
    main()
