#!/usr/bin/env python3
"""Scenario: plug your own maximal-matching oracle into ASM.

Theorem 3's analysis needs exactly one thing from Step 3 of
ProposalRound: the returned matching must be *maximal* in the
accepted-proposal graph (Definition 3).  This example implements a
custom oracle — highest-degree-first greedy — verifies its output
against the library's Definition-3 checker on every call, runs ASM
with it, and compares against the built-in oracles.

Run:  python examples/custom_oracle.py
"""

from __future__ import annotations

from repro import asm, complete_uniform, instability
from repro.analysis.tables import format_table
from repro.core.rounds import ActualCost
from repro.graphs import Graph
from repro.mm.oracles import (
    deterministic_oracle,
    israeli_itai_oracle,
    port_order_oracle,
)
from repro.mm.result import MMResult
from repro.mm.verify import is_maximal_matching


def degree_greedy_oracle(graph: Graph) -> MMResult:
    """Custom oracle: repeatedly match the highest-degree free vertex.

    A centralized heuristic (rounds reported as 0) that tends to
    produce *large* maximal matchings — useful if you care about
    matching size as well as stability.
    """
    g = graph.copy()
    partner = {}
    while True:
        candidates = [v for v in g.nodes() if g.degree(v) > 0]
        if not candidates:
            break
        v = max(candidates, key=lambda u: (g.degree(u), repr(u)))
        u = max(g.neighbors(v), key=lambda x: (g.degree(x), repr(x)))
        partner[v] = u
        partner[u] = v
        g.remove_node(v)
        g.remove_node(u)
    assert is_maximal_matching(graph, partner), "oracle must be maximal!"
    return MMResult(partner=partner, rounds=0)


def main() -> None:
    n, eps = 128, 0.2
    prefs = complete_uniform(n, seed=0)

    oracles = {
        "custom degree-greedy": degree_greedy_oracle,
        "deterministic pointer": deterministic_oracle(),
        "bipartite port-order": port_order_oracle(),
        "Israeli-Itai": israeli_itai_oracle(seed=1),
    }
    rows = []
    for name, oracle in oracles.items():
        run = asm(prefs, eps, mm_oracle=oracle, mm_cost_model=ActualCost())
        rows.append(
            {
                "oracle": name,
                "instability": instability(prefs, run.matching),
                "eps_bound": eps,
                "matching_size": len(run.matching),
                "rounds_active": run.rounds_active,
            }
        )
    print(format_table(rows, title=f"ASM with pluggable oracles (n={n})"))
    print(
        "\nAll oracles satisfy the eps bound — Theorem 3 only needs "
        "maximality\n(verified per call inside the custom oracle)."
    )


if __name__ == "__main__":
    main()
