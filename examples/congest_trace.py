#!/usr/bin/env python3
"""Scenario: watch ASM run as a true message-passing protocol.

Runs the message-level CONGEST implementation of ASM on a small
instance — every player is an independent node program exchanging
O(log n)-bit PROPOSE / ACCEPT / REJECT / MM_POINT / MM_TAKEN messages
through the synchronous simulator — and verifies the outcome matches
the logical engine exactly (DESIGN.md §4 cross-validation).

Run:  python examples/congest_trace.py
"""

from __future__ import annotations

from repro import complete_uniform, instability
from repro.analysis.tables import format_table
from repro.congest.recorder import MessageRecorder
from repro.congest.protocols import run_congest_asm
from repro.core.asm import ASMEngine
from repro.mm.deterministic import deterministic_maximal_matching


def main() -> None:
    n, eps = 8, 0.5
    prefs = complete_uniform(n, seed=4)
    k, inner, outer, mm_iters = 4, 6, 4, 2 * n

    print(f"Running message-level ASM on n={n} (k={k}) ...")
    recorder = MessageRecorder(max_events=500)
    congest = run_congest_asm(
        prefs,
        eps,
        k=k,
        inner_iterations=inner,
        outer_iterations=outer,
        mm_iterations=mm_iters,
        recorder=recorder,
    )
    stats = congest.stats

    print(f"  communication rounds : {stats.rounds}")
    print(f"  messages sent        : {stats.messages}")
    print(f"  total bits           : {stats.total_bits}")
    print(f"  largest message      : {stats.max_message_bits} bits "
          f"(CONGEST cap per message: O(log n))")
    busiest = max(range(len(stats.messages_per_round)),
                  key=lambda r: stats.messages_per_round[r])
    print(f"  busiest round        : #{busiest + 1} "
          f"({stats.messages_per_round[busiest]} messages)")

    print("\nmessages by kind:")
    print(format_table(recorder.summary_rows()))
    print("\nfirst recorded messages:")
    print(recorder.sequence_table(limit=8))

    engine = ASMEngine(
        prefs,
        eps,
        k=k,
        inner_iterations=inner,
        outer_iterations=outer,
        mm_oracle=lambda g: deterministic_maximal_matching(
            g, max_iterations=mm_iters
        ),
    )
    logical = engine.run()

    print("\nfinal matching (man -> woman):")
    for m, w in congest.matching.pairs():
        print(f"  m{m} -> w{w}")
    print(f"\ninstability: {instability(prefs, congest.matching):.4f} "
          f"(bound {eps})")
    same = congest.matching == logical.matching
    print(f"identical to logical engine: {same}")
    assert same


if __name__ == "__main__":
    main()
