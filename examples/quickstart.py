#!/usr/bin/env python3
"""Quickstart: find an almost stable matching in a random market.

Builds a complete random preference profile, runs the paper's three
algorithms plus the Gale–Shapley baseline, and prints a side-by-side
stability/rounds comparison.

Run:  python examples/quickstart.py [n] [eps]
"""

from __future__ import annotations

import sys

from repro import (
    almost_regular_asm,
    asm,
    complete_uniform,
    gale_shapley,
    instability,
    rand_asm,
    stability_report,
)
from repro.analysis.tables import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    eps = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    print(f"Generating a complete random market with n = {n} ...")
    prefs = complete_uniform(n, seed=0)

    rows = []

    # The paper's deterministic algorithm (Theorem 1 / Theorem 3).
    result = asm(prefs, eps)
    rep = stability_report(prefs, result.matching)
    rows.append(
        {
            "algorithm": "ASM (deterministic)",
            "blocking_pairs": rep.blocking_pairs,
            "instability": rep.instability,
            "eps_bound": eps,
            "rounds_active": result.rounds_active,
        }
    )

    # The randomized variant (Theorem 5).
    result = rand_asm(prefs, eps, failure_prob=0.1, seed=1)
    rows.append(
        {
            "algorithm": "RandASM",
            "blocking_pairs": stability_report(
                prefs, result.matching
            ).blocking_pairs,
            "instability": instability(prefs, result.matching),
            "eps_bound": eps,
            "rounds_active": result.rounds_active,
        }
    )

    # The constant-round variant for complete preferences (Theorem 6).
    result = almost_regular_asm(prefs, eps, seed=2)
    rows.append(
        {
            "algorithm": "AlmostRegularASM",
            "blocking_pairs": stability_report(
                prefs, result.matching
            ).blocking_pairs,
            "instability": instability(prefs, result.matching),
            "eps_bound": eps,
            "rounds_active": result.rounds_active,
        }
    )

    # The exact (but slow in the distributed model) classical baseline.
    gs = gale_shapley(prefs)
    rows.append(
        {
            "algorithm": "Gale-Shapley (exact)",
            "blocking_pairs": 0,
            "instability": 0.0,
            "eps_bound": 0.0,
            "rounds_active": gs.proposals,
        }
    )

    print(format_table(rows, title=f"\nn={n}, |E|={prefs.num_edges}"))
    print(
        "\nEvery ASM variant stays within its eps bound; Gale-Shapley is "
        "exact\nbut needs Theta(n^2) sequential proposals in the worst case."
    )


if __name__ == "__main__":
    main()
