#!/usr/bin/env python3
"""Scenario: a decentralized job market with almost-regular demand.

Candidates (men) each apply to a similar number of positions (women) —
an α-almost-regular market in the paper's Section 5.2 sense.  For such
markets ``AlmostRegularASM`` (Theorem 6) finds a (1−ε)-stable matching
in a number of communication rounds that does not depend on the market
size at all.  This script demonstrates that: the scheduled round budget
stays exactly flat as the market grows 16×, while quality stays within
ε.

Run:  python examples/job_market.py
"""

from __future__ import annotations

from repro import almost_regular, almost_regular_asm, instability
from repro.analysis.tables import format_table
from repro.core.almost_regular import plan_almost_regular


def main() -> None:
    eps, delta = 0.3, 0.1
    d_min, d_max = 6, 12  # every candidate applies to 6-12 positions

    rows = []
    for n in (64, 128, 256, 512, 1024):
        prefs = almost_regular(n, d_min, d_max, seed=n)
        alpha = prefs.regularity_alpha()
        plan = plan_almost_regular(prefs, eps, delta, alpha=2.0)
        run = almost_regular_asm(prefs, eps, delta, alpha=2.0, seed=1)
        rows.append(
            {
                "n": n,
                "|E|": prefs.num_edges,
                "alpha_measured": alpha,
                "instability": instability(prefs, run.matching),
                "eps": eps,
                "removed_men": len(run.removed_men),
                "rounds_scheduled": run.rounds_scheduled,
                "amm_iters_per_call": plan.amm_iterations_per_call,
            }
        )
    print(
        format_table(
            rows,
            title="job market: AlmostRegularASM at fixed (alpha, eps, delta)",
        )
    )
    print(
        "\nNote the rounds_scheduled column: identical for every market "
        "size —\nTheorem 6's O(1)-round guarantee for almost-regular "
        "preferences."
    )


if __name__ == "__main__":
    main()
