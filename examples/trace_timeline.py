#!/usr/bin/env python3
"""Scenario: inspect how an ASM run converges, round by round.

Attaches a :class:`~repro.analysis.trace.TraceObserver` to an ASM run
and prints the proposal-round timeline: proposals/accepts/rejects, the
accepted-proposal graph G₀'s size, the matching size, and the good/bad
men counts after every round — the mechanics of Lemmas 1, 2 and 6 made
visible.

Run:  python examples/trace_timeline.py [n] [eps]
"""

from __future__ import annotations

import sys

from repro import asm, gnp_incomplete, instability
from repro.analysis.tables import format_table
from repro.analysis.trace import TraceObserver


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    eps = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    prefs = gnp_incomplete(n, 0.3, seed=1)
    trace = TraceObserver()
    run = asm(prefs, eps, observer=trace)

    print(trace.timeline_table(max_rows=25))

    summary = trace.convergence_summary()
    print()
    print(
        format_table(
            [summary], title="convergence summary"
        )
    )
    print()
    print(f"instability     : {instability(prefs, run.matching):.4f} "
          f"(bound {eps})")
    print(f"good men        : {len(run.good_men)}/{n}")
    print(f"quantile matches: {run.quantile_match_calls_executed} executed "
          f"of {run.quantile_match_calls_scheduled} scheduled")
    print(
        "\nReading the timeline: matching_size and good_men only ever "
        "grow\n(Lemma 1 monotonicity); each burst of rejects is a woman "
        "trading up\nand clearing her weakly-worse quantiles."
    )


if __name__ == "__main__":
    main()
