#!/usr/bin/env python3
"""Scenario: round-complexity scaling study (Theorem 4 vs the baseline).

Sweeps market size and reports, per n:

* ASM's active rounds (messages actually flowed) and the paper's
  worst-case schedule under the Hańćkowiak–Karoński–Panconesi cost
  model (the O(ε⁻³ log⁵ n) bound of Theorem 4),
* distributed Gale–Shapley's rounds-to-quiescence on the same
  instances and on the adversarial instance where GS needs Θ(n²)
  proposals,

then fits log-log slopes: polylog curves flatten (slope → 0), GS's
adversarial work is polynomial (slope ≈ 2).

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

from repro import (
    adversarial_gale_shapley,
    asm,
    complete_uniform,
    gale_shapley,
    parallel_gale_shapley,
)
from repro.analysis.statistics import loglog_slope
from repro.analysis.tables import format_table


def main() -> None:
    eps = 0.4
    ns = [32, 64, 128, 256]
    rows = []
    series = {"asm_active": [], "gs_rounds": [], "gs_adv_proposals": []}
    for n in ns:
        prefs = complete_uniform(n, seed=0)
        run = asm(prefs, eps)
        gs = parallel_gale_shapley(prefs)
        adv = gale_shapley(adversarial_gale_shapley(n))
        series["asm_active"].append(run.rounds_active)
        series["gs_rounds"].append(gs.rounds)
        series["gs_adv_proposals"].append(adv.proposals)
        rows.append(
            {
                "n": n,
                "asm_rounds_active": run.rounds_active,
                "asm_rounds_scheduled(HKP)": run.rounds_scheduled,
                "gs_rounds": gs.rounds,
                "gs_adversarial_proposals": adv.proposals,
            }
        )
    print(format_table(rows, title=f"scaling study (eps={eps})"))
    print("\nlog-log slopes (0 ~ polylog, 1 ~ linear, 2 ~ quadratic):")
    for name, ys in series.items():
        print(f"  {name:>20}: {loglog_slope(ns, ys):+.2f}")


if __name__ == "__main__":
    main()
