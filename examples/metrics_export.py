#!/usr/bin/env python3
"""Scenario: compare algorithms through their exported telemetry.

Runs the paper's deterministic ASM and the Gale–Shapley baseline on
the same workload, exports each run's metrics with
:func:`repro.io.save_metrics` (manifest included), then loads the
files back and prints a side-by-side comparison of rounds, messages,
and wall time — everything read from the exported JSON, exactly as a
downstream analysis script would consume it.

The same files can be produced from the command line:

    repro run --algorithm asm --metrics-out m.json --events-out e.jsonl

Run:  python examples/metrics_export.py [n] [eps]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import (
    MetricsObserver,
    RunManifest,
    Telemetry,
    complete_uniform,
    gale_shapley,
    instability,
)
from repro.analysis.tables import format_table
from repro.core.asm import asm
from repro.io import load_metrics, save_metrics


def run_asm(prefs, eps: float, path: Path) -> None:
    """Run ASM with full telemetry and export the metrics file."""
    manifest = RunManifest.capture(
        algorithm="asm", workload="complete", n=prefs.n_men,
        params={"eps": eps},
    )
    telemetry = Telemetry.create(manifest)
    observer = MetricsObserver(telemetry)
    with telemetry.timer("run.wall_seconds"):
        result = asm(prefs, eps, observer=observer, telemetry=telemetry)
    telemetry.metrics.set_gauge(
        "run.instability", instability(prefs, result.matching)
    )
    manifest.finish()
    save_metrics(telemetry.metrics, path, manifest)


def run_gs(prefs, path: Path) -> None:
    """Run Gale–Shapley, hand-feeding the same metric vocabulary."""
    manifest = RunManifest.capture(
        algorithm="gale-shapley", workload="complete", n=prefs.n_men,
    )
    telemetry = Telemetry.create(manifest)
    with telemetry.timer("run.wall_seconds"):
        result = gale_shapley(prefs)
    telemetry.metrics.inc("gs.proposals", result.proposals)
    telemetry.metrics.inc("gs.rounds", result.rounds)
    telemetry.metrics.set_gauge(
        "run.instability", instability(prefs, result.matching)
    )
    manifest.finish()
    save_metrics(telemetry.metrics, path, manifest)


def summarize(path: Path) -> dict:
    """Reduce one exported metrics file to a comparison row."""
    doc = load_metrics(path)
    manifest, metrics = doc["manifest"], doc["metrics"]
    counters = metrics["counters"]
    if manifest["algorithm"] == "asm":
        rounds = counters["asm.proposal_rounds"]
        messages = (
            counters["asm.messages.proposes"]
            + counters["asm.messages.accepts"]
            + counters["asm.messages.rejects"]
        )
    else:
        rounds = counters["gs.rounds"]
        messages = counters["gs.proposals"]
    wall = metrics["histograms"]["run.wall_seconds"]["sum"]
    return {
        "algorithm": manifest["algorithm"],
        "rounds": rounds,
        "messages": messages,
        "wall_ms": round(1000 * wall, 2),
        "instability": round(metrics["gauges"]["run.instability"], 4),
    }


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    eps = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    prefs = complete_uniform(n, seed=0)

    print(f"Running ASM (eps={eps}) and Gale-Shapley on n={n} ...")
    with tempfile.TemporaryDirectory() as tmp:
        asm_path = Path(tmp) / "asm_metrics.json"
        gs_path = Path(tmp) / "gs_metrics.json"
        run_asm(prefs, eps, asm_path)
        run_gs(prefs, gs_path)

        rows = [summarize(asm_path), summarize(gs_path)]
        doc = load_metrics(asm_path)
        phases = doc["metrics"]["histograms"]

    print()
    print(format_table(rows, title="side-by-side from exported metrics"))
    print()
    print("ASM engine phase timings (seconds, from the same export):")
    for name in sorted(phases):
        if not name.startswith("asm.phase."):
            continue
        h = phases[name]
        print(
            f"  {name:28s} count={h['count']:4d}  "
            f"p50={h['p50']:.6f}  p95={h['p95']:.6f}  max={h['max']:.6f}"
        )
    print()
    print("Each file embeds its RunManifest (algorithm, params, seed,")
    print("timestamps, python version) so results stay attributable.")


if __name__ == "__main__":
    main()
