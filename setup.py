"""Shim so that editable installs work without the ``wheel`` package.

The environment has setuptools but not ``wheel``; ``pip install -e .
--no-build-isolation --no-use-pep517`` falls back to ``setup.py
develop``, which needs this file.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
